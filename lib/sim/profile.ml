let now_ns = Monotonic_clock.now

type phase = Delivery | Server_step | Client_step | Checker | Telemetry | Other

let phase_index = function
  | Delivery -> 0
  | Server_step -> 1
  | Client_step -> 2
  | Checker -> 3
  | Telemetry -> 4
  | Other -> 5

let phase_count = 6

let phase_label = function
  | Delivery -> "delivery"
  | Server_step -> "server_step"
  | Client_step -> "client_step"
  | Checker -> "checker"
  | Telemetry -> "telemetry"
  | Other -> "other"

let phases = [ Delivery; Server_step; Client_step; Checker; Telemetry; Other ]

(* A flat self-time profiler: [enter p] pushes a phase, [leave]
   pops it, and every transition charges the elapsed wall time to the
   phase that was running.  Nested phases therefore report *self*
   time — a server step that spends half its time inside
   [Network.send] shows that half under [delivery], not twice.  Time
   outside any phase is charged to [Other].  All state is
   preallocated: enabling the profiler adds two monotonic-clock reads
   per transition and zero allocation to the hot path; disabled it is
   one branch. *)

let max_depth = 64

type t = {
  mutable enabled : bool;
  totals_ns : int64 array;  (* self nanoseconds per phase *)
  counts : int array;  (* enter count per phase *)
  stack : int array;  (* phase indices; depth 0 = Other *)
  mutable depth : int;
  mutable last_ns : int64;
  mutable started_ns : int64;
  event_counts : int array;  (* per Event constructor, via trace sink *)
}

let create () =
  {
    enabled = false;
    totals_ns = Array.make phase_count 0L;
    counts = Array.make phase_count 0;
    stack = Array.make max_depth (phase_index Other);
    depth = 0;
    last_ns = 0L;
    started_ns = 0L;
    event_counts = Array.make (Array.length Event.kinds) 0;
  }

let enabled t = t.enabled

let reset t =
  Array.fill t.totals_ns 0 phase_count 0L;
  Array.fill t.counts 0 phase_count 0;
  Array.fill t.event_counts 0 (Array.length t.event_counts) 0;
  t.depth <- 0;
  let now = now_ns () in
  t.last_ns <- now;
  t.started_ns <- now

let enable t =
  reset t;
  t.enabled <- true

let current t = if t.depth = 0 then phase_index Other else t.stack.(t.depth - 1)

let charge t now =
  let i = current t in
  t.totals_ns.(i) <- Int64.add t.totals_ns.(i) (Int64.sub now t.last_ns);
  t.last_ns <- now

let enter t phase =
  if t.enabled then begin
    let now = now_ns () in
    charge t now;
    let i = phase_index phase in
    t.counts.(i) <- t.counts.(i) + 1;
    if t.depth < max_depth then begin
      t.stack.(t.depth) <- i;
      t.depth <- t.depth + 1
    end
  end

let leave t =
  if t.enabled then begin
    charge t (now_ns ());
    if t.depth > 0 then t.depth <- t.depth - 1
  end

let with_phase t phase f =
  if t.enabled then begin
    enter t phase;
    Fun.protect ~finally:(fun () -> leave t) f
  end
  else f ()

let count_event t ev =
  let i = Event.index ev in
  t.event_counts.(i) <- t.event_counts.(i) + 1

let event_sink t : Trace.sink = fun ~time:_ ev -> count_event t ev

(* ------------------------------------------------------------------ *)
(* reports *)

type report = {
  wall_s : float;
  phase_rows : (string * int * float) list;  (* label, enters, self seconds *)
  event_rows : (string * int) list;  (* kind, count; descending, top-K *)
  events_total : int;
}

let report ?(top = 8) t =
  (* settle the open phase so self-times add up to now *)
  if t.enabled then charge t (now_ns ());
  let wall_s = Int64.to_float (Int64.sub t.last_ns t.started_ns) *. 1e-9 in
  let phase_rows =
    List.map
      (fun p ->
        let i = phase_index p in
        (phase_label p, t.counts.(i), Int64.to_float t.totals_ns.(i) *. 1e-9))
      phases
  in
  let event_rows =
    Array.to_list (Array.mapi (fun i c -> (Event.kinds.(i), c)) t.event_counts)
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> fun rows -> List.filteri (fun i _ -> i < top) rows
  in
  let events_total = Array.fold_left ( + ) 0 t.event_counts in
  { wall_s; phase_rows; event_rows; events_total }

let to_json r =
  Json.Obj
    [
      ("wall_s", Json.Float r.wall_s);
      ( "phases",
        Json.Obj
          (List.map
             (fun (label, count, self_s) ->
               (label, Json.Obj [ ("count", Json.Int count); ("self_s", Json.Float self_s) ]))
             r.phase_rows) );
      ( "top_events",
        Json.Obj (List.map (fun (kind, count) -> (kind, Json.Int count)) r.event_rows) );
      ("events_total", Json.Int r.events_total);
    ]

let pp fmt r =
  let attributed = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 r.phase_rows in
  let pct s = if r.wall_s <= 0.0 then 0.0 else 100.0 *. s /. r.wall_s in
  Format.fprintf fmt "@[<v>profile: %.3fs wall, %.3fs attributed@," r.wall_s attributed;
  Format.fprintf fmt "  %-12s %10s %10s %6s@," "phase" "enters" "self ms" "%";
  List.iter
    (fun (label, count, self_s) ->
      Format.fprintf fmt "  %-12s %10d %10.2f %5.1f%%@," label count (self_s *. 1e3) (pct self_s))
    r.phase_rows;
  if r.event_rows <> [] then begin
    Format.fprintf fmt "  top event kinds (%d total):@," r.events_total;
    List.iter
      (fun (kind, count) -> Format.fprintf fmt "    %-16s %10d@," kind count)
      r.event_rows
  end;
  Format.fprintf fmt "@]"
