(** Registry of every metric name used by the instrumentation.

    Call sites must use these bindings instead of inline string
    literals: the names are part of the machine-readable artifact
    format ([--metrics-out]) and the registry's doc strings are the
    format's documentation.  A source lint in the test suite keeps the
    tree honest. *)

val net_sent : string

val net_delivered : string

val net_dropped : string

val net_parked : string

val net_injected : string

val net_sent_kind_prefix : string
(** Prefix for per-message-kind send counters; the suffix is the
    network's classifier output (e.g. [net.sent.write_req]). *)

val dl_transmissions : string

val dl_retransmissions : string

val dl_acks : string

val client_write_retries : string

val server_label_adoptions : string

val server_label_rejections : string

val faults_injected : string

(** {1 Streaming observability}

    Names for the series/detector/alert layer (PR 8).  The stabilization
    names carry the online detector's verdicts; the alert names count
    rising-edge rule firings. *)

val telemetry_occupancy : string

val stab_shards_stabilized : string

val stab_time_to_stabilize_ticks : string

val stab_fleet_time_to_stabilize_ticks : string

val stab_shard_prefix : string

val stab_shard : shard:int -> string
(** [stab_shard ~shard] is ["stab.shard.<shard>"], memoized like
    {!kv_shard} and bounded at {!stab_shard_memo_cap}. *)

val stab_shard_memo_cap : int

val alerts_prefix : string

val alert_rule_slo_burn : string

val alert_rule_abort_spike : string

val alert_rule_divergence : string

val alerts : string -> string
(** [alerts rule] is ["alerts.<rule>"] — the counter bumped on each
    rising-edge firing of an anomaly rule. *)

(** Histogram names record virtual-tick latencies via
    {!Metrics.record}. *)

val write_collect_ticks : string

val write_commit_ticks : string

val write_total_ticks : string

val read_flush_ticks : string

val read_decide_ticks : string

val read_total_ticks : string

val read_abort_ticks : string

val dl_ack_rtt_ticks : string

val loadgen_queue_wait_ticks : string
(** Open-loop generator: virtual ticks an accepted arrival waited in
    the admission queue before a free client dispatched it. *)

(** {1 Per-shard names}

    Dynamically numbered metrics ([kv.shard.<i>.<field>]) are minted
    exclusively by {!kv_shard}, keeping the no-literals lint meaningful
    for templated names: call sites never [Printf] a metric name. *)

val kv_shard_prefix : string

type shard_field =
  | Shard_puts  (** completed puts on the shard *)
  | Shard_gets  (** completed (value-returning) gets *)
  | Shard_aborts  (** gets that aborted *)
  | Shard_put_ticks  (** put latency histogram, virtual ticks *)
  | Shard_get_ticks  (** get latency histogram, virtual ticks *)
  | Shard_flow  (** streaming series: ops per window, sum = aborts *)
  | Shard_op_ticks  (** streaming series: op latency, per-window digest *)
  | Shard_offered  (** open-loop arrivals routed to the shard *)
  | Shard_accepted  (** arrivals admitted (queued or dispatched) *)
  | Shard_rejected  (** arrivals shed: the admission queue was full *)
  | Shard_queue  (** streaming series: admission queue depth *)
  | Shard_e2e_ticks  (** open-loop end-to-end latency (queue + service) *)

val shard_fields : shard_field list

val shard_field_name : shard_field -> string

val kv_shard : shard:int -> shard_field -> string
(** [kv_shard ~shard field] is ["kv.shard.<shard>.<field>"], memoized
    so repeated lookups allocate nothing.  The memo is bounded at
    {!kv_shard_memo_cap} shards; out-of-range shard indices (including
    negative ones from corrupted state) still mint a correct name but
    bypass the memo rather than growing it without bound. *)

val kv_shard_memo_cap : int
(** Upper bound on memoized shard indices (per field). *)

val kv_shard_memo_size : unit -> int
(** Total slots currently allocated across the per-field memo arrays —
    exposed so tests can assert the bound holds. *)

type kind = Counter | Histogram | Prefix

val all : (string * kind * string) list
(** [(name-or-prefix, kind, doc)] for every registered metric. *)

val mem : string -> bool
(** Whether a concrete metric name is covered by the registry (exact
    match, or extends a registered prefix). *)
