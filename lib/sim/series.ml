(* Bounded-memory streaming time series.

   Everything here is O(1) memory in the length of the run: a window
   aggregate is a handful of scalars plus a fixed-capacity quantile
   digest, a series keeps one open window, a ring of the last [keep]
   closed windows and one all-time rollup, and the stabilization
   detector is three integers of state.  All of it feeds off the
   virtual clock and op completions only — never the trace — so every
   number is bit-identical across trace levels and under replay. *)

(* ------------------------------------------------------------------ *)
(* Mergeable streaming quantile digest.

   A P²-style marker digest: at most [cap] weighted markers (mean,
   weight) kept sorted by mean.  New samples buffer as weight-1 markers
   and are folded in by an equal-weight compression pass when the
   buffer fills; merging two digests concatenates their markers and
   compresses the union the same way.  Rank error is ~1/cap, memory is
   2*cap floats, and every operation is deterministic — no randomness,
   no wall clock — so digests agree across replays. *)

module Quantile = struct
  type t = {
    cap : int;
    mutable means : float array;  (* sorted, length [len] used *)
    mutable weights : float array;
    mutable len : int;
    mutable pending : float array;  (* unsorted weight-1 samples *)
    mutable npending : int;
    mutable count : int;
  }

  let default_cap = 64

  let create ?(cap = default_cap) () =
    let cap = max 8 cap in
    (* Everything is allocated lazily: a digest is created per window
       per series, and most windows see a handful of samples, so the
       marker arrays appear only at the first compression and the
       pending buffer grows geometrically from 16 slots up to 4x the
       marker budget.  This keeps the per-window cost proportional to
       what the window actually observed (the bench gate holds the
       whole series layer under 5%). *)
    {
      cap;
      means = [||];
      weights = [||];
      len = 0;
      pending = Array.make 16 0.0;
      npending = 0;
      count = 0;
    }

  let count t = t.count

  (* Compress a sorted marker list down to ~cap markers of roughly
     equal weight.  Deterministic greedy walk: close the current group
     once it reaches total/cap. *)
  let compress t (markers : (float * float) array) =
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) markers;
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 markers in
    let chunk = total /. float_of_int t.cap in
    let out_m = Array.make t.cap 0.0 and out_w = Array.make t.cap 0.0 in
    let oi = ref 0 in
    let gm = ref 0.0 and gw = ref 0.0 in
    let flush () =
      if !gw > 0.0 && !oi < t.cap then begin
        out_m.(!oi) <- !gm /. !gw;
        out_w.(!oi) <- !gw;
        incr oi;
        gm := 0.0;
        gw := 0.0
      end
    in
    Array.iter
      (fun (m, w) ->
        gm := !gm +. (m *. w);
        gw := !gw +. w;
        (* Keep the last slot open for the tail so nothing is dropped. *)
        if !gw >= chunk && !oi < t.cap - 1 then flush ())
      markers;
    flush ();
    t.means <- out_m;
    t.weights <- out_w;
    t.len <- !oi

  (* Fold the pending weight-1 samples in without boxing: sort the
     pending slice in place (unboxed float array), then run the same
     greedy equal-weight grouping as {!compress} over the merge-walk
     of the two sorted sequences.  This is the per-sample hot path —
     [compress] with its tuple array is kept for the rare
     digest-to-digest {!merge}. *)
  let fold_pending t =
    if t.npending > 0 then begin
      let np = t.npending in
      let p = Array.sub t.pending 0 np in
      Array.sort Float.compare p;
      let total = ref (float_of_int np) in
      for i = 0 to t.len - 1 do
        total := !total +. t.weights.(i)
      done;
      let chunk = !total /. float_of_int t.cap in
      let out_m = Array.make t.cap 0.0 and out_w = Array.make t.cap 0.0 in
      let oi = ref 0 in
      let gm = ref 0.0 and gw = ref 0.0 in
      let flush () =
        if !gw > 0.0 && !oi < t.cap then begin
          out_m.(!oi) <- !gm /. !gw;
          out_w.(!oi) <- !gw;
          incr oi;
          gm := 0.0;
          gw := 0.0
        end
      in
      let push m w =
        gm := !gm +. (m *. w);
        gw := !gw +. w;
        if !gw >= chunk && !oi < t.cap - 1 then flush ()
      in
      let i = ref 0 and j = ref 0 in
      while !i < t.len || !j < np do
        if !j >= np || (!i < t.len && t.means.(!i) <= p.(!j)) then begin
          push t.means.(!i) t.weights.(!i);
          incr i
        end
        else begin
          push p.(!j) 1.0;
          incr j
        end
      done;
      flush ();
      t.means <- out_m;
      t.weights <- out_w;
      t.len <- !oi;
      t.npending <- 0
    end

  let add t v =
    t.count <- t.count + 1;
    if t.npending = Array.length t.pending then
      if t.npending >= 4 * t.cap then fold_pending t
      else begin
        let bigger = Array.make (2 * t.npending) 0.0 in
        Array.blit t.pending 0 bigger 0 t.npending;
        t.pending <- bigger
      end;
    t.pending.(t.npending) <- v;
    t.npending <- t.npending + 1

  let merge a b =
    let t = create ~cap:(max a.cap b.cap) () in
    fold_pending a;
    fold_pending b;
    let markers =
      Array.init (a.len + b.len) (fun i ->
          if i < a.len then (a.means.(i), a.weights.(i))
          else (b.means.(i - a.len), b.weights.(i - a.len)))
    in
    if Array.length markers > 0 then compress t markers;
    t.count <- a.count + b.count;
    t

  (* Quantile by linear interpolation between marker midpoints, the
     standard digest read-out: marker i's weight is centred on its
     cumulative midpoint. *)
  let quantile t p =
    fold_pending t;
    if t.len = 0 then 0.0
    else if t.len = 1 then t.means.(0)
    else begin
      let total = ref 0.0 in
      for i = 0 to t.len - 1 do
        total := !total +. t.weights.(i)
      done;
      let rank = Float.max 0.0 (Float.min 1.0 (p /. 100.0)) *. !total in
      let acc = ref 0.0 and i = ref 0 and res = ref t.means.(t.len - 1) and stop = ref false in
      while (not !stop) && !i < t.len do
        let mid = !acc +. (t.weights.(!i) /. 2.0) in
        if rank <= mid then begin
          (if !i = 0 then res := t.means.(0)
           else begin
             let prev_mid = !acc -. (t.weights.(!i - 1) /. 2.0) in
             let span = mid -. prev_mid in
             let frac = if span <= 0.0 then 0.0 else (rank -. prev_mid) /. span in
             res := t.means.(!i - 1) +. (frac *. (t.means.(!i) -. t.means.(!i - 1)))
           end);
          stop := true
        end
        else begin
          acc := !acc +. t.weights.(!i);
          incr i
        end
      done;
      !res
    end

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("p50", Json.Float (quantile t 50.0));
        ("p95", Json.Float (quantile t 95.0));
        ("p99", Json.Float (quantile t 99.0));
      ]
end

(* ------------------------------------------------------------------ *)
(* One window's aggregate. *)

module Agg = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    mutable q : Quantile.t option;  (* allocated on first observation *)
  }

  let empty () = { count = 0; sum = 0.0; min = Float.infinity; max = Float.neg_infinity; q = None }

  let is_empty a = a.count = 0

  let observe ?(quantiles = false) a v =
    a.count <- a.count + 1;
    a.sum <- a.sum +. v;
    if v < a.min then a.min <- v;
    if v > a.max then a.max <- v;
    if quantiles then begin
      let q = match a.q with
        | Some q -> q
        | None ->
            let q = Quantile.create () in
            a.q <- Some q;
            q
      in
      Quantile.add q v
    end

  let mean a = if a.count = 0 then 0.0 else a.sum /. float_of_int a.count

  let min a = if a.count = 0 then 0.0 else a.min

  let max a = if a.count = 0 then 0.0 else a.max

  let quantile a p = match a.q with None -> 0.0 | Some q -> Quantile.quantile q p

  (* Associative, commutative: merging per-shard windows into a fleet
     window loses nothing but quantile resolution (bounded by the
     digest's rank error — qcheck holds this to tolerance). *)
  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      q =
        (match (a.q, b.q) with
        | None, None -> None
        | Some q, None | None, Some q -> Some (Quantile.merge q (Quantile.create ()))
        | Some qa, Some qb -> Some (Quantile.merge qa qb));
    }

  let to_json a =
    Json.Obj
      ([
         ("count", Json.Int a.count);
         ("sum", Json.Float a.sum);
         ("mean", Json.Float (mean a));
         ("min", Json.Float (min a));
         ("max", Json.Float (max a));
       ]
      @ match a.q with None -> [] | Some q -> [ ("q", Quantile.to_json q) ])
end

(* ------------------------------------------------------------------ *)
(* Tumbling-window series: one open window, a ring of the last [keep]
   closed ones, an all-time rollup.  Windows close lazily as later
   observations (or an explicit [roll_to]) arrive. *)

type closed_hook = index:int -> Agg.t -> unit

type t = {
  name : string;
  window : int;
  keep : int;
  quantiles : bool;
  mutable cur_index : int;  (* window index of the open window *)
  mutable cur : Agg.t;
  ring : Agg.t option array;  (* slot i holds window (index mod keep) *)
  ring_index : int array;  (* which window index occupies each slot *)
  total : Agg.t;
  mutable closed : int;  (* windows closed so far (including empty) *)
  mutable hooks : closed_hook list;
}

let create ?(keep = 64) ?(quantiles = false) ~window ~name () =
  if window <= 0 then invalid_arg "Series.create: window must be positive";
  let keep = max 1 keep in
  {
    name;
    window;
    keep;
    quantiles;
    cur_index = 0;
    cur = Agg.empty ();
    ring = Array.make keep None;
    ring_index = Array.make keep (-1);
    total = Agg.empty ();
    closed = 0;
    hooks = [];
  }

let name t = t.name

let window t = t.window

let on_close t hook = t.hooks <- t.hooks @ [ hook ]

let index_of t time = if time < 0 then 0 else time / t.window

let close_one t =
  let idx = t.cur_index in
  let agg = t.cur in
  let slot = idx mod t.keep in
  t.ring.(slot) <- Some agg;
  t.ring_index.(slot) <- idx;
  t.closed <- t.closed + 1;
  t.cur <- Agg.empty ();
  t.cur_index <- idx + 1;
  List.iter (fun hook -> hook ~index:idx agg) t.hooks

(* Close every window that ends at or before [time].  With close hooks
   installed the loop walks one window at a time so hooks see every
   index (a gap of empty windows is real data — those windows were
   clean).  Without hooks a long gap fast-forwards in O(keep): only the
   last [keep] windows are observable through [recent]/[merge_recent],
   and every one of the skipped windows is empty, so it suffices to
   close the (possibly non-empty) current window normally and then
   bulk-account the rest — bump [closed], jump [cur_index].  Stale ring
   slots left behind by the jump self-invalidate: readers accept a slot
   only when [ring_index.(slot)] equals the index they are asking for,
   so skipped-over windows correctly read back as empty.  This keeps a
   pathological 10^7-tick gap between observations (e.g. an idle shard
   against a 1-tick window) from materializing 10^7 aggregates one by
   one. *)
let roll_to t ~time =
  let target = index_of t time in
  if t.hooks = [] && target - t.cur_index > t.keep then begin
    close_one t;
    let skipped = target - t.cur_index in
    t.closed <- t.closed + skipped;
    t.cur_index <- target
  end
  else
    while t.cur_index < target do
      close_one t
    done

let observe t ~time v =
  roll_to t ~time;
  Agg.observe ~quantiles:t.quantiles t.cur v;
  Agg.observe ~quantiles:t.quantiles t.total v

let incr t ~time = observe t ~time 1.0

let current t = t.cur

let total t = t.total

let closed_windows t = t.closed

(* The last [n] closed windows, oldest first, with empty windows
   materialized — exactly what a sparkline wants. *)
let recent t ?(n = max_int) () =
  let n = min n (min t.keep t.closed) in
  List.init n (fun i ->
      let idx = t.cur_index - n + i in
      let slot = ((idx mod t.keep) + t.keep) mod t.keep in
      let agg =
        if idx >= 0 && t.ring_index.(slot) = idx then
          match t.ring.(slot) with Some a -> a | None -> Agg.empty ()
        else Agg.empty ()
      in
      (idx, agg))

(* Merge the recent windows of several same-width series point-wise:
   the fleet view of per-shard series.  O(keep) memory however many
   shards roll up. *)
let merge_recent ?(n = max_int) series =
  match series with
  | [] -> []
  | first :: _ ->
      List.iter
        (fun s ->
          if s.window <> first.window then
            invalid_arg "Series.merge_recent: window widths differ")
        series;
      let hi = List.fold_left (fun acc s -> max acc s.cur_index) 0 series in
      let lo_bound = List.fold_left (fun acc s -> min acc (s.cur_index - min s.keep s.closed)) hi series in
      let lo = max lo_bound (hi - min n first.keep) in
      List.init (max 0 (hi - lo)) (fun i ->
          let idx = lo + i in
          let merged =
            List.fold_left
              (fun acc s ->
                let slot = ((idx mod s.keep) + s.keep) mod s.keep in
                if idx >= 0 && s.ring_index.(slot) = idx then
                  match s.ring.(slot) with Some a -> Agg.merge acc a | None -> acc
                else acc)
              (Agg.empty ()) series
          in
          (idx, merged))

let to_json ?(n = max_int) t =
  let recent = recent t ~n () in
  Json.Obj
    ([
       ("name", Json.String t.name);
       ("window", Json.Int t.window);
       ("windows_closed", Json.Int t.closed);
       ("t", Json.List (List.map (fun (idx, _) -> Json.Int (idx * t.window)) recent));
       ("count", Json.List (List.map (fun (_, a) -> Json.Int a.Agg.count) recent));
       ("sum", Json.List (List.map (fun (_, a) -> Json.Float a.Agg.sum) recent));
       ("mean", Json.List (List.map (fun (_, a) -> Json.Float (Agg.mean a)) recent));
     ]
    @ (if t.quantiles then
         [ ("p99", Json.List (List.map (fun (_, a) -> Json.Float (Agg.quantile a 99.0)) recent)) ]
       else [])
    @ [ ("total", Agg.to_json t.total) ])

(* ------------------------------------------------------------------ *)
(* Online pseudo-stabilization detector.

   The paper's claim is that violations decay to zero after the last
   transient fault; the detector watches a dirty/clean signal (aborted
   reads, violations, stale reads) per window and declares the
   stabilization point once [k] consecutive windows after the last
   fault are clean.  Three integers of state; fed from op completions,
   so the verdict is replay-deterministic and trace-level invariant.

   The declared point is provisional until [finalize]: a later dirty
   window revokes it and restarts the streak, so the final report is
   the earliest clean point with no dirt after it. *)

module Detector = struct
  type state = Pending | Stabilized of int  (* virtual time the clean suffix starts *)

  type t = {
    window : int;
    k : int;
    after : int;  (* last injected fault; the clock starts here *)
    mutable last_index : int;  (* last window index accounted for *)
    mutable streak_start : int;  (* index of the first window of the current clean streak *)
    mutable state : state;
    mutable dirty_windows : int;
    mutable observed : int;  (* raw dirty observations *)
  }

  let create ?(k = 3) ~window ~after () =
    if window <= 0 then invalid_arg "Detector.create: window must be positive";
    if k <= 0 then invalid_arg "Detector.create: k must be positive";
    let first = after / window in
    {
      window;
      k;
      after;
      last_index = first - 1;
      streak_start = first;
      state = Pending;
      dirty_windows = 0;
      observed = 0;
    }

  let declare t =
    (* The clean suffix starts at the streak's first window, clamped to
       the fault itself for the window the fault landed in. *)
    let start = max t.after (t.streak_start * t.window) in
    t.state <- Stabilized start

  (* Account for window [index] being dirty or clean.  Indices must be
     non-decreasing; gaps are clean windows. *)
  let step t ~index ~dirty =
    if index > t.last_index then begin
      (* The gap [last_index+1 .. index-1] was clean; the streak keeps
         running through it. *)
      t.last_index <- index;
      if dirty then begin
        t.dirty_windows <- t.dirty_windows + 1;
        t.streak_start <- index + 1;
        t.state <- Pending
      end
      else if t.state = Pending && index - t.streak_start + 1 >= t.k then declare t
    end
    else if dirty && index >= t.streak_start then begin
      (* Late dirt inside the supposed streak (same-window stragglers):
         restart from the next window. *)
      t.dirty_windows <- t.dirty_windows + 1;
      t.streak_start <- t.last_index + 1;
      t.state <- Pending
    end

  (* Feed one raw observation (an op completion).  Windowing is done
     here, so callers need no Series at all. *)
  let observe t ~time ~dirty =
    let index = if time < 0 then 0 else time / t.window in
    if dirty then t.observed <- t.observed + 1;
    step t ~index ~dirty

  (* Close the books at virtual time [now]: every fully elapsed window
     up to [now] counts toward the streak. *)
  let finalize t ~now =
    let last_full = (now / t.window) - 1 in
    if last_full > t.last_index then step t ~index:last_full ~dirty:false;
    t.state

  let state t = t.state

  let time_to_stabilize t =
    match t.state with Pending -> None | Stabilized at -> Some (max 0 (at - t.after))

  let dirty_windows t = t.dirty_windows

  let dirty_observations t = t.observed

  let to_json t =
    Json.Obj
      [
        ("window", Json.Int t.window);
        ("k", Json.Int t.k);
        ("after", Json.Int t.after);
        ("dirty_windows", Json.Int t.dirty_windows);
        ("dirty_observations", Json.Int t.observed);
        ( "stabilized_at",
          match t.state with Pending -> Json.Null | Stabilized at -> Json.Int at );
        ( "time_to_stabilize",
          match time_to_stabilize t with None -> Json.Null | Some v -> Json.Int v );
      ]
end
