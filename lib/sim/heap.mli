(** Binary min-heap keyed by [(time, seq)] pairs.

    The event queue of the discrete-event engine.  Ties on [time] are
    broken by the monotonically increasing sequence number [seq], which
    makes event ordering total and the whole simulation deterministic.

    Keys and payloads are stored in parallel arrays: sift comparisons
    are unboxed [int] reads, and [pop]/[clear] release the payload
    slots they vacate, so a delivered message or closure becomes
    collectable the moment it leaves the queue. *)

type 'a t
(** Heap holding payloads of type ['a]. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert a payload with the given key. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(time, seq, payload)], if any. *)

val no_event : int
(** Sentinel returned by [min_time] on an empty heap ([max_int]). *)

val min_time : 'a t -> int
(** Time of the minimum element, or [no_event] if empty — the
    allocation-free peek for hot loops. *)

val take : 'a t -> 'a
(** Remove the minimum element and return its payload without boxing
    the key.  Raises [Invalid_argument] on an empty heap: pair it with
    [min_time] in hot loops. *)

val peek_time : 'a t -> int option
(** Time of the minimum element without removing it. *)

val clear : 'a t -> unit
