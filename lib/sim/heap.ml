(* Parallel-array layout: keys live in two plain [int array]s so sift
   comparisons never touch a payload (no pointer chasing, no boxed
   records), and payloads live in an ['a option array] so a vacated
   slot can be overwritten with [None].  The previous record-array
   layout left popped entries live in the backing store — every
   delivered message/closure stayed reachable for the lifetime of the
   heap, which in a long fuzz campaign pinned an unbounded amount of
   retired simulation state. *)
type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a option array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; payloads = [||]; len = 0 }

let is_empty t = t.len = 0

let size t = t.len

let lt t i j =
  t.times.(i) < t.times.(j) || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tt = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tt;
  let ts = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- ts;
  let tp = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- tp

let grow t =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 and np = Array.make ncap None in
    Array.blit t.times 0 nt 0 t.len;
    Array.blit t.seqs 0 ns 0 t.len;
    Array.blit t.payloads 0 np 0 t.len;
    t.times <- nt;
    t.seqs <- ns;
    t.payloads <- np
  end

let push t ~time ~seq payload =
  grow t;
  t.times.(t.len) <- time;
  t.seqs.(t.len) <- seq;
  t.payloads.(t.len) <- Some payload;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while !i > 0 && lt t !i ((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    swap t !i p;
    i := p
  done

(* Flat variant of [pop]: callers have already checked emptiness (via
   [min_time]), so no option or tuple is built — the engine's inner
   loop runs one of these per event. *)
let take t =
  if t.len = 0 then invalid_arg "Heap.take: empty";
  let payload = match t.payloads.(0) with Some p -> p | None -> assert false in
  t.len <- t.len - 1;
  t.times.(0) <- t.times.(t.len);
  t.seqs.(0) <- t.seqs.(t.len);
  t.payloads.(0) <- t.payloads.(t.len);
  (* Release the vacated slot — the payload must not outlive the pop. *)
  t.payloads.(t.len) <- None;
  if t.len > 0 then begin
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && lt t l !smallest then smallest := l;
      if r < t.len && lt t r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end;
  payload

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let payload = take t in
    Some (time, seq, payload)
  end

let no_event = max_int

let min_time t = if t.len = 0 then no_event else t.times.(0)

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let clear t =
  (* Drop the backing stores outright: clearing mid-campaign must not
     keep the high-water-mark's worth of payloads (or capacity) alive. *)
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||];
  t.len <- 0
