(** Discrete-event simulation engine.

    The engine owns a virtual clock, an event heap of thunks, a master
    PRNG and the run-wide metrics/trace sinks.  Everything above it —
    channels, protocol automata, fault injectors — is expressed as
    thunks scheduled at future virtual times.  The clock only advances
    when the heap is popped, and ties are broken by insertion order, so
    a run is a pure function of [(seed, scheduled work)]. *)

type t

val create :
  ?trace:bool ->
  ?trace_level:Trace.level ->
  ?trace_capacity:int ->
  ?sample:float ->
  ?sample_seed:int64 ->
  seed:int64 ->
  unit ->
  t
(** Fresh engine at virtual time 0.  [trace] is the legacy boolean
    toggle (true = {!Trace.On}); [trace_level] overrides it with the
    full four-level dial, and [sample]/[sample_seed] configure the
    deterministic sampler used at {!Trace.Sampled} (see {!Trace.create}).
    None of these affect the simulation itself — a run is a pure
    function of [(seed, scheduled work)] at every trace level. *)

val now : t -> int
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's master PRNG. Subsystems should {!Rng.split} it once at
    construction rather than drawing from it during the run. *)

val metrics : t -> Metrics.t

val trace : t -> Trace.t

val profile : t -> Profile.t
(** The engine's self-profiler.  Always allocated, disabled by default;
    {!Profile.enable} arms it.  Disabled it costs one branch per probe,
    so instrumented subsystems can probe unconditionally. *)

val events_fired : t -> int
(** Total thunks executed so far.  This is the engine's raw throughput
    denominator — meaningful even with tracing {!Trace.Off}, when no
    event list exists to count. *)

val fresh_span : t -> int
(** Allocate a run-unique span id (a dense counter from 0).  Spans name
    one client operation across every layer: the id is stamped into the
    operation's trace events and carried by its messages, so the span
    assembler ({!Sbft_analysis}) can rebuild the op's tree post-hoc.
    Allocation draws no randomness and is identical at every trace
    level, so it never perturbs replay determinism. *)

val spans_allocated : t -> int
(** Number of span ids handed out so far. *)

val schedule : ?daemon:bool -> t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t + max 1 delay].
    Events never fire at the current instant: a positive delay is
    enforced so causality is strict.

    [daemon] (default false) marks the event as an observation probe:
    it fires normally but is excluded from {!pending}.  Self-rearming
    probes (telemetry, progress) must schedule as daemons and re-arm
    only while [pending > 0] — otherwise two probes each count the
    other's next poll as work and keep the engine alive forever, and a
    probe attached only at record time would perturb another probe's
    re-arm decisions, breaking replay. *)

val schedule_now : t -> (unit -> unit) -> unit
(** Run [f] at the current time, after all work already queued for this
    instant. Used for local (zero-latency) steps such as a client
    processing a completed quorum. *)

val pending : t -> int
(** Events still queued, excluding daemon probes — the amount of real
    work left. *)

val step : t -> bool
(** Execute the next event. Returns [false] if the heap was empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the heap. Stops early once the clock passes [until] or after
    [max_events] events. Raises [Stalled] never — an empty heap just
    returns. *)

exception Budget_exhausted
(** Raised by {!run} when [max_events] fired with work still pending —
    the usual sign of a livelocked protocol in a test. *)
