(** Bounded-memory streaming time series.

    The post-hoc observability stack (trace artifacts, span trees)
    caps out where full tracing does; this module is the streaming
    alternative: tumbling-window aggregates that cost O(1) memory per
    window however long the run, an associative window merge so
    per-shard series roll up into fleet series without keeping either
    side's samples, and an online pseudo-stabilization detector that
    declares the paper's stabilization point while the run executes.

    Everything is driven by the virtual clock and operation
    completions, never by the trace, so every number is bit-identical
    across trace levels and under replay. *)

(** Mergeable streaming quantile digest (P²-style weighted markers,
    fixed capacity).  Rank error is ~1/cap; memory is 2·cap floats.
    Unlike the fixed-bucket histograms, the digest adapts to the data,
    so p99 never saturates against a bucket ceiling. *)
module Quantile : sig
  type t

  val default_cap : int
  (** 64 markers: ≲2% rank error through a merge. *)

  val create : ?cap:int -> unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val quantile : t -> float -> float
  (** [quantile t p] estimates the [p]-th percentile ([p] in [0,100]).
      0 on an empty digest. *)

  val merge : t -> t -> t
  (** A fresh digest summarizing both inputs' samples.  Associative and
      commutative up to the digest's rank error (qcheck-held). *)

  val to_json : t -> Json.t
end

(** One window's aggregate: count, sum, min, max and (optionally) a
    quantile digest. *)
module Agg : sig
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;  (** +inf when empty; read via {!min} *)
    mutable max : float;  (** -inf when empty; read via {!max} *)
    mutable q : Quantile.t option;
  }

  val empty : unit -> t

  val is_empty : t -> bool

  val observe : ?quantiles:bool -> t -> float -> unit

  val mean : t -> float

  val min : t -> float
  (** 0 when empty. *)

  val max : t -> float
  (** 0 when empty. *)

  val quantile : t -> float -> float
  (** 0 when no digest was kept. *)

  val merge : t -> t -> t
  (** Exact for count/sum/min/max, within digest rank error for
      quantiles.  Associative — the window-merge law the fleet rollup
      and the tests rely on. *)

  val to_json : t -> Json.t
end

type t
(** A tumbling-window series: one open window, a ring of the last
    [keep] closed windows, one all-time rollup. *)

type closed_hook = index:int -> Agg.t -> unit

val create : ?keep:int -> ?quantiles:bool -> window:int -> name:string -> unit -> t
(** [create ~window ~name ()] makes a series with [window]-tick
    tumbling windows keeping the last [keep] (default 64) closed
    windows.  [quantiles] arms the per-window digest (for value
    series; pure event-rate series should leave it off). *)

val name : t -> string

val window : t -> int

val on_close : t -> closed_hook -> unit
(** Register a hook invoked for {e every} closed window in index
    order, empty ones included (an empty window is a clean window —
    the detector needs to see it). *)

val observe : t -> time:int -> float -> unit
(** Record [v] at virtual [time], closing any windows that end at or
    before it first.  Times must be non-decreasing (the virtual clock
    is). *)

val incr : t -> time:int -> unit
(** [observe t ~time 1.0]. *)

val roll_to : t -> time:int -> unit
(** Close every window ending at or before [time] without recording
    anything — the end-of-run flush.  Gaps longer than [keep] windows
    fast-forward in O(keep) when no {!on_close} hooks are installed
    (only the last [keep] windows are observable, and the skipped ones
    are all empty); with hooks, every index is closed individually so
    hooks see the full sequence. *)

val current : t -> Agg.t
(** The open window. *)

val total : t -> Agg.t
(** The all-time rollup. *)

val closed_windows : t -> int

val recent : t -> ?n:int -> unit -> (int * Agg.t) list
(** The last [n] closed windows, oldest first, as
    [(window_index, aggregate)]; empty windows are materialized.
    Window [i] covers ticks [[i*window, (i+1)*window)). *)

val merge_recent : ?n:int -> t list -> (int * Agg.t) list
(** Point-wise {!Agg.merge} of several same-width series' recent
    windows — the fleet view of per-shard series.  Raises
    [Invalid_argument] when window widths differ. *)

val to_json : ?n:int -> t -> Json.t

(** Online pseudo-stabilization detector: watches a dirty/clean signal
    per window and declares the stabilization point once [k]
    consecutive fully-elapsed windows after the last fault are clean.
    A later dirty window revokes a provisional declaration, so the
    final state is the earliest clean point with no dirt after it.
    Three integers of state; deterministic under replay. *)
module Detector : sig
  type state =
    | Pending
    | Stabilized of int  (** virtual time the clean suffix starts *)

  type t

  val create : ?k:int -> window:int -> after:int -> unit -> t
  (** [after] is the time of the last injected fault (0 when none);
      the time-to-stabilize clock starts there.  [k] defaults to 3. *)

  val observe : t -> time:int -> dirty:bool -> unit
  (** Feed one op completion; the detector does its own windowing. *)

  val step : t -> index:int -> dirty:bool -> unit
  (** Lower-level: account for window [index] directly (indices
      non-decreasing; gaps count as clean windows). *)

  val finalize : t -> now:int -> state
  (** Count every fully elapsed window up to virtual time [now] as
      clean and return the final state. *)

  val state : t -> state

  val time_to_stabilize : t -> int option
  (** [Stabilized at - after], once declared. *)

  val dirty_windows : t -> int

  val dirty_observations : t -> int

  val to_json : t -> Json.t
end
