(** Protocol-state coverage extracted from an event trace — the signal
    that drives the schedule fuzzer's corpus retention.

    A run's coverage is the set of abstract keys its event stream
    touches:

    - one {e unigram} per event, refined by the discriminating field
      (operation phase, message kind, finish outcome, drop reason,
      violation kind), so reaching a new protocol phase or a new abort
      path mints a new key;
    - one {e bigram} per consecutive pair of unigrams in stream order —
      cheap happens-next structure that distinguishes schedules which
      visit the same states in a different interleaving;
    - {e occupancy buckets} from [Server_state] snapshots: the sting's
      residue class in the label universe crossed with bucketed history
      depth and reader load, so label-space drift after faults counts
      as new territory.

    The key space is finite by construction (all components are drawn
    from small enumerations or log-bucketed), so a fuzzing campaign's
    global coverage saturates instead of growing with trace length.
    Everything is deterministic in the event stream.

    Keys are interned to dense integer ids in a per-domain table
    ([Domain.DLS]), and a set is a bitset over those ids — so sets are
    cheap to build and merge within one domain, and safe to build
    concurrently from several domains.  Ids are not comparable across
    domains; [absorb] detects the cross-domain case and translates
    through the key strings, and [add_key]/[keys] exchange strings
    explicitly (the corpus-merge protocol). *)

type t
(** Mutable key set, plus the last unigram for bigram formation.
    Bound to the intern table of the domain that [create]d it: call
    [observe] only from that domain. *)

val create : unit -> t

val reset : t -> unit
(** Empty the set in place, keeping its backing storage — lets a fuzz
    loop reuse one scratch set per schedule instead of reallocating. *)

val observe : t -> Event.t -> unit
(** Fold one event into the set (usable directly as a trace sink's
    body). *)

val of_events : (int * Event.t) list -> t
(** Coverage of a whole recorded stream. *)

val cardinal : t -> int

val keys : t -> string list
(** Sorted, for deterministic reporting. *)

val mem : t -> string -> bool

val absorb : into:t -> t -> int
(** [absorb ~into run] adds every key of [run] to [into] and returns
    how many were new — the fuzzer's "did this schedule reach anything
    we have not seen" test.  Same-domain absorbs are a bitset union;
    sets minted on different domains are translated through their key
    strings. *)

val add_key : t -> string -> bool
(** Add one key by name (interning it if needed); [true] if it was not
    already present.  The receiving end of a cross-domain merge. *)

val absorb_keys : into:t -> t -> string list
(** Like {!absorb}, but returns the newly-added keys by name (sorted) —
    what a fuzz domain ships through the corpus-merge queue. *)

val key_of_event : Event.t -> string
(** The unigram abstraction (exposed for tests). *)
