(** Typed event trace: bounded in-memory ring plus pluggable sinks,
    with a verbosity {e level} chosen per run.

    When tracing, protocol layers emit one {!Event.t} per interesting
    moment (message lifecycle, operation phase, fault injection).  The
    ring retains only the most recent [capacity] events, so tracing
    long runs stays O(capacity); sinks additionally see events as they
    happen, which is how [--trace-out] streams an unbounded JSONL file
    while the ring stays small for forensics.

    Levels scale the observability cost with the run:

    - {!Off} — nothing is recorded; [emit] is one branch, and hot
      paths that guard event construction behind {!enabled} never
      allocate the payload.
    - {!Sampled} — the ring sees {e every} event (so a replayable
      forensic window always exists) but sinks only see a
      deterministic pseudo-random subset: million-op runs keep
      bounded JSONL artifacts.  The sampler is seeded independently of
      the engine PRNG, so the simulation itself is bit-identical at
      every level and the sampled stream is a subsequence of the full
      one for the same seeds.
    - {!On} — ring and sinks see everything (the default for
      recorded, replayable runs).
    - {!Forensic} — additionally records free-form {!log}/{!logf}
      narration ({!Event.Note}), the chattiest tier. *)

type level = Off | Sampled | On | Forensic

val level_to_string : level -> string

val level_of_string : string -> (level, string) result
(** Accepts ["off"], ["sampled"], ["on"] (or ["normal"]), ["forensic"]. *)

val levels : level list
(** In increasing verbosity order. *)

type t

type sink = time:int -> Event.t -> unit
(** Sinks run synchronously on each emit (non-[Off] traces only; the
    sampled subset at {!Sampled}) and must not emit events themselves. *)

val create : ?capacity:int -> ?sample:float -> ?sample_seed:int64 -> level:level -> unit -> t
(** [capacity] defaults to 4096 ring entries.  [sample] is the
    per-event probability a sink sees it at {!Sampled} (default 0.01);
    [sample_seed] seeds the private sampler (default [0x5eed]). *)

val level : t -> level

val sample_rate : t -> float

val enabled : t -> bool
(** [level t <> Off].  Callers on hot paths should check this first to
    avoid building the event at all. *)

val forensic : t -> bool
(** [level t = Forensic]. *)

val add_sink : t -> sink -> unit

val emit : t -> time:int -> Event.t -> unit
(** Record a typed event (no-op when [Off]; ring-only for unsampled
    events at [Sampled]). *)

val log : t -> time:int -> string -> unit
(** Record a free-form {!Event.Note} — {!Forensic} level only. *)

val logf : t -> time:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!log}; the message is only built at {!Forensic}. *)

val entries : t -> (int * Event.t) list
(** Retained events, oldest first. *)

val window : t -> from_time:int -> until:int -> (int * Event.t) list
(** Retained events with [from_time <= t <= until], oldest first. *)

val dump : t -> Format.formatter -> unit
(** Print all retained events, one per line, as ["[%d] %a"]. *)

val jsonl_sink : out_channel -> sink
(** A sink that writes each event as one JSON line (see
    {!Event.to_json}).  The caller owns the channel: flush/close it
    after the run. *)
