(** Typed event trace: bounded in-memory ring plus pluggable sinks.

    When enabled, protocol layers emit one {!Event.t} per interesting
    moment (message lifecycle, operation phase, fault injection).  The
    ring retains only the most recent [capacity] events, so tracing
    long runs stays O(capacity); sinks additionally see {e every}
    event as it happens, which is how [--trace-out] streams an
    unbounded JSONL file while the ring stays small for forensics.

    Disabled traces cost one branch per call: [emit] tests [enabled]
    before touching anything, and hot paths should guard event
    construction behind {!enabled} so the payload is never allocated. *)

type t

type sink = time:int -> Event.t -> unit
(** Sinks run synchronously on each emit (enabled traces only) and
    must not emit events themselves. *)

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [capacity] defaults to 4096 entries. *)

val enabled : t -> bool

val add_sink : t -> sink -> unit

val emit : t -> time:int -> Event.t -> unit
(** Record a typed event (no-op when disabled).  Callers on hot paths
    should check {!enabled} first to avoid building the event. *)

val log : t -> time:int -> string -> unit
(** Record a free-form {!Event.Note} (no-op when disabled). *)

val logf : t -> time:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!log}; the message is only built when tracing is on. *)

val entries : t -> (int * Event.t) list
(** Retained events, oldest first. *)

val window : t -> from_time:int -> until:int -> (int * Event.t) list
(** Retained events with [from_time <= t <= until], oldest first. *)

val dump : t -> Format.formatter -> unit
(** Print all retained events, one per line, as ["[%d] %a"]. *)

val jsonl_sink : out_channel -> sink
(** A sink that writes each event as one JSON line (see
    {!Event.to_json}).  The caller owns the channel: flush/close it
    after the run. *)
