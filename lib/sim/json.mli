(** Minimal JSON tree, emitter and parser.

    The run artifacts ([--trace-out] JSONL, [--metrics-out] snapshots)
    are plain JSON, and the container has no JSON library — this is
    the small closed-world implementation they share.  The emitter
    escapes control characters and passes UTF-8 bytes through; the
    parser accepts everything the emitter produces plus standard JSON
    escapes ([\uXXXX] sequences, including surrogate pairs, decode to
    UTF-8), so foreign artifacts load too. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no newlines), suitable for one-line-per-record
    JSONL streams. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; [Error] carries the offset of the
    first problem. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)
