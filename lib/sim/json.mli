(** Minimal JSON tree, emitter and parser.

    The run artifacts ([--trace-out] JSONL, [--metrics-out] snapshots)
    are plain JSON, and the container has no JSON library — this is
    the small closed-world implementation they share.  The emitter
    escapes control characters; the parser accepts exactly what the
    emitter produces (plus whitespace), which is all the tests need to
    verify the artifacts parse back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no newlines), suitable for one-line-per-record
    JSONL streams. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; [Error] carries the offset of the
    first problem. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)
