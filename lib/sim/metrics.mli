(** Named monotone counters, value series and fixed-bucket histograms
    for a simulation run.

    Cheap enough to leave enabled everywhere: counters are hashtable
    slots, series are growable float buffers, and histogram recording
    is a ~20-element scan with no allocation.  Experiments read them
    back at the end of a run to build tables; [--metrics-out]
    serializes the whole snapshot. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr t name] bumps counter [name] by one (creating it at 0). *)

val add : t -> string -> int -> unit
(** [add t name v] bumps counter [name] by [v]. *)

val get : t -> string -> int
(** Current value of a counter, 0 if never touched. *)

type counter
(** A resolved counter handle: the name lookup (and any key-string
    construction) paid once instead of per bump.  For per-message hot
    paths — the network resolves one handle per message kind instead of
    concatenating a key string on every send.  {!reset} orphans
    outstanding handles: re-resolve after a reset. *)

val counter : t -> string -> counter
(** Resolve (creating at 0 if needed). *)

val counter_incr : counter -> unit
val counter_add : counter -> int -> unit
val counter_get : counter -> int

val observe : t -> string -> float -> unit
(** [observe t name v] appends [v] to the series [name]. *)

val series : t -> string -> float array
(** All observations of a series, in insertion order. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Histograms}

    Fixed buckets keep long runs O(1) per sample where a series would
    grow without bound — the per-operation phase latencies use these.
    Percentiles are extracted from the bucket counts by
    {!Sbft_harness.Stats.hist_percentile}. *)

type hist_snapshot = {
  bounds : float array;  (** bucket upper bounds, strictly increasing *)
  counts : int array;  (** length = [bounds] + 1; last is the overflow bucket *)
  count : int;
  sum : float;
  min : float;  (** 0 when empty *)
  max : float;  (** 0 when empty *)
  stream : Series.Quantile.t option;
      (** streaming quantile digest over the same samples — consult it
          where a bucket percentile saturates; [None] when empty *)
}

val default_bounds : float array
(** Geometric: 1, 2, 4, … 2^19 virtual ticks. *)

val record : ?bounds:float array -> t -> string -> float -> unit
(** [record t name v] adds [v] to histogram [name], creating it (with
    [bounds], default {!default_bounds}) on first use.  [bounds] is
    ignored on later calls. *)

type hist
(** A resolved histogram handle: the name lookup paid once instead of
    per sample.  For hot paths that record the same histogram for every
    operation (the open-loop generator's queue-wait and end-to-end
    latencies).  Resolving a handle creates the (empty) histogram;
    {!reset} orphans outstanding handles — re-resolve after a reset. *)

val hist : ?bounds:float array -> t -> string -> hist
val hist_record : hist -> float -> unit

val histogram : t -> string -> hist_snapshot option

val histograms : t -> (string * hist_snapshot) list
(** All histograms, sorted by name. *)

val reset : t -> unit
