type series = { mutable buf : float array; mutable len : int }

type hist = {
  bounds : float array; (* strictly increasing upper bounds; overflow bucket implicit *)
  hcounts : int array; (* length = Array.length bounds + 1 *)
  mutable total : int;
  mutable sum : float;
  mutable hmin : float;
  mutable hmax : float;
  hq : Series.Quantile.t;
      (* streaming digest alongside the buckets: where a percentile
         saturates against the last bound, the digest still has an
         estimate (rank error ~1/cap instead of a clamp) *)
}

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  count : int;
  sum : float;
  min : float;
  max : float;
  stream : Series.Quantile.t option;
}

(* Geometric tick buckets: 1, 2, 4, … 2^19 cover everything a
   discrete-event run at delay ≤ tens of ticks can produce; the
   overflow bucket catches the rest. *)
let default_bounds = Array.init 20 (fun i -> Float.of_int (1 lsl i))

type t = {
  counters : (string, int ref) Hashtbl.t;
  observations : (string, series) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    observations = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let slot t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = incr (slot t name)

type counter = int ref

let counter t name = slot t name
let counter_incr (c : counter) = Stdlib.incr c

let counter_add (c : counter) v = c := !c + v
let counter_get (c : counter) = !c

let add t name v =
  let r = slot t name in
  r := !r + v

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let series_slot t name =
  match Hashtbl.find_opt t.observations name with
  | Some s -> s
  | None ->
      let s = { buf = Array.make 16 0.0; len = 0 } in
      Hashtbl.add t.observations name s;
      s

let observe t name v =
  let s = series_slot t name in
  if s.len = Array.length s.buf then begin
    let nb = Array.make (2 * s.len) 0.0 in
    Array.blit s.buf 0 nb 0 s.len;
    s.buf <- nb
  end;
  s.buf.(s.len) <- v;
  s.len <- s.len + 1

let series t name =
  match Hashtbl.find_opt t.observations name with
  | Some s -> Array.sub s.buf 0 s.len
  | None -> [||]

let hist_slot t ?(bounds = default_bounds) name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          bounds;
          hcounts = Array.make (Array.length bounds + 1) 0;
          total = 0;
          sum = 0.0;
          hmin = Float.infinity;
          hmax = Float.neg_infinity;
          hq = Series.Quantile.create ();
        }
      in
      Hashtbl.add t.histograms name h;
      h

let bucket_of bounds v =
  (* First bucket whose upper bound admits v; linear scan is fine for
     ~20 buckets and keeps the hot path allocation-free. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let hist ?bounds t name = hist_slot t ?bounds name

let hist_record (h : hist) v =
  let b = bucket_of h.bounds v in
  h.hcounts.(b) <- h.hcounts.(b) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  Series.Quantile.add h.hq v

let record ?bounds t name v = hist_record (hist_slot t ?bounds name) v

let snapshot (h : hist) =
  {
    bounds = Array.copy h.bounds;
    counts = Array.copy h.hcounts;
    count = h.total;
    sum = h.sum;
    min = (if h.total = 0 then 0.0 else h.hmin);
    max = (if h.total = 0 then 0.0 else h.hmax);
    (* merge-with-empty yields a fresh compressed copy, so the snapshot
       stays immutable while the live digest keeps growing *)
    stream =
      (if h.total = 0 then None
       else Some (Series.Quantile.merge h.hq (Series.Quantile.create ())));
  }

let histogram t name = Option.map snapshot (Hashtbl.find_opt t.histograms name)

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, snapshot h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.observations;
  Hashtbl.reset t.histograms
