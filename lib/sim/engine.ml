type t = {
  mutable clock : int;
  mutable seq : int;
  mutable fired : int;
  mutable daemons : int;
  mutable spans : int;
  heap : (unit -> unit) Heap.t;
  master_rng : Rng.t;
  metrics : Metrics.t;
  trace : Trace.t;
  profile : Profile.t;
}

exception Budget_exhausted

let create ?(trace = false) ?trace_level ?(trace_capacity = 4096) ?sample ?sample_seed ~seed () =
  let level =
    match trace_level with Some l -> l | None -> if trace then Trace.On else Trace.Off
  in
  {
    clock = 0;
    seq = 0;
    fired = 0;
    daemons = 0;
    spans = 0;
    heap = Heap.create ();
    master_rng = Rng.create seed;
    metrics = Metrics.create ();
    trace = Trace.create ~capacity:trace_capacity ?sample ?sample_seed ~level ();
    profile = Profile.create ();
  }

let now t = t.clock

let rng t = t.master_rng

let metrics t = t.metrics

let trace t = t.trace

let profile t = t.profile

let events_fired t = t.fired

(* Span ids come from a plain counter, never the RNG: allocation order
   is the simulation's own event order, so ids are identical across
   replays and across trace levels. *)
let fresh_span t =
  let s = t.spans in
  t.spans <- s + 1;
  s

let spans_allocated t = t.spans

let push t ~time f =
  Heap.push t.heap ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

(* Daemon events are observation probes (telemetry, progress) that
   re-arm themselves while real work remains.  They must not count as
   pending work, or two probes would each see the other's next poll
   and keep the engine alive forever — and a probe attached only at
   record time would change another probe's re-arm decisions, breaking
   replay. *)
let schedule ?(daemon = false) t ~delay f =
  let time = t.clock + max 1 delay in
  if daemon then begin
    t.daemons <- t.daemons + 1;
    push t ~time (fun () ->
        t.daemons <- t.daemons - 1;
        f ())
  end
  else push t ~time f

let schedule_now t f = push t ~time:t.clock f

let pending t = Heap.size t.heap - t.daemons

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, _, f) ->
      if time > t.clock then t.clock <- time;
      t.fired <- t.fired + 1;
      f ();
      true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    (match until, Heap.peek_time t.heap with
    | Some u, Some next when next > u -> continue := false
    | _, None -> continue := false
    | _ -> ());
    if !continue then begin
      (match max_events with
      | Some m when !fired >= m -> raise Budget_exhausted
      | _ -> ());
      ignore (step t);
      incr fired
    end
  done
