type t = {
  mutable clock : int;
  mutable seq : int;
  mutable fired : int;
  mutable daemons : int;
  mutable spans : int;
  heap : (unit -> unit) Heap.t;
  master_rng : Rng.t;
  metrics : Metrics.t;
  trace : Trace.t;
  profile : Profile.t;
}

exception Budget_exhausted

let create ?(trace = false) ?trace_level ?(trace_capacity = 4096) ?sample ?sample_seed ~seed () =
  let level =
    match trace_level with Some l -> l | None -> if trace then Trace.On else Trace.Off
  in
  {
    clock = 0;
    seq = 0;
    fired = 0;
    daemons = 0;
    spans = 0;
    heap = Heap.create ();
    master_rng = Rng.create seed;
    metrics = Metrics.create ();
    trace = Trace.create ~capacity:trace_capacity ?sample ?sample_seed ~level ();
    profile = Profile.create ();
  }

let now t = t.clock

let rng t = t.master_rng

let metrics t = t.metrics

let trace t = t.trace

let profile t = t.profile

let events_fired t = t.fired

(* Span ids come from a plain counter, never the RNG: allocation order
   is the simulation's own event order, so ids are identical across
   replays and across trace levels. *)
let fresh_span t =
  let s = t.spans in
  t.spans <- s + 1;
  s

let spans_allocated t = t.spans

let push t ~time f =
  Heap.push t.heap ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

(* Daemon events are observation probes (telemetry, progress) that
   re-arm themselves while real work remains.  They must not count as
   pending work, or two probes would each see the other's next poll
   and keep the engine alive forever — and a probe attached only at
   record time would change another probe's re-arm decisions, breaking
   replay. *)
let schedule ?(daemon = false) t ~delay f =
  let time = t.clock + max 1 delay in
  if daemon then begin
    t.daemons <- t.daemons + 1;
    push t ~time (fun () ->
        t.daemons <- t.daemons - 1;
        f ())
  end
  else push t ~time f

let schedule_now t f = push t ~time:t.clock f

let pending t = Heap.size t.heap - t.daemons

let step t =
  let time = Heap.min_time t.heap in
  if time = Heap.no_event then false
  else begin
    let f = Heap.take t.heap in
    if time > t.clock then t.clock <- time;
    t.fired <- t.fired + 1;
    f ();
    true
  end

(* The inner loop fires millions of events per second, so the optional
   bounds are hoisted to plain ints once and the heap is probed through
   the flat [min_time]/[take] pair — no [option] or tuple is built per
   event.  [Heap.no_event] is [max_int], so an empty heap also reads as
   "past any bound". *)
let run ?until ?max_events t =
  let until = match until with Some u -> u | None -> max_int in
  let budget = match max_events with Some m -> m | None -> max_int in
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    let next = Heap.min_time t.heap in
    if next = Heap.no_event || next > until then continue := false
    else begin
      if !fired >= budget then raise Budget_exhausted;
      let f = Heap.take t.heap in
      if next > t.clock then t.clock <- next;
      t.fired <- t.fired + 1;
      f ();
      incr fired
    end
  done

