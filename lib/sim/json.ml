type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if not (Float.is_finite f) then
    (* JSON has no NaN or infinity literals; [1e999] overflows to
       infinity in our own parser but standard parsers reject it, so
       all three non-finite values degrade to null uniformly. *)
    "null"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser — recursive descent over the string, enough for reading back
   the artifacts this module writes. *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* UTF-8 encode one Unicode scalar value. *)
let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body c =
  let b = Buffer.create 16 in
  let hex4 () =
    if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
    let hex = String.sub c.src c.pos 4 in
    c.pos <- c.pos + 4;
    match int_of_string_opt ("0x" ^ hex) with
    | Some code -> code
    | None -> fail c "bad \\u escape"
  in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            let code = hex4 () in
            (* A high surrogate must pair with a following \uDC00-\uDFFF
               low surrogate; decode the pair into one scalar value. *)
            if code >= 0xD800 && code <= 0xDBFF then begin
              if
                c.pos + 6 <= String.length c.src
                && c.src.[c.pos] = '\\'
                && c.src.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let low = hex4 () in
                if low >= 0xDC00 && low <= 0xDFFF then
                  add_utf8 b (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
                else fail c "unpaired surrogate"
              end
              else fail c "unpaired surrogate"
            end
            else if code >= 0xDC00 && code <= 0xDFFF then fail c "unpaired surrogate"
            else add_utf8 b code;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> fail c "expected , or ]"
        in
        items []
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected , or }"
        in
        members []
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | _ -> fail c "unexpected character"

let of_string s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" c.pos)
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
