(* The single home of every metric name in the tree.  Instrumentation
   sites refer to these bindings, never to string literals — a lint in
   the test suite (test_metric_names.ml) fails the build when a raw
   ["..."] reappears next to a Metrics call outside this module. *)

(* -- counters ------------------------------------------------------- *)

let net_sent = "net.sent"

let net_delivered = "net.delivered"

let net_dropped = "net.dropped"

let net_parked = "net.parked"

let net_injected = "net.injected"

let net_sent_kind_prefix = "net.sent."
(* Suffixed with the classifier's constructor name: net.sent.write_req … *)

let dl_transmissions = "dl.transmissions"

let dl_retransmissions = "dl.retransmissions"

let dl_acks = "dl.acks"

let client_write_retries = "client.write_retries"

let server_label_adoptions = "server.label_adoptions"

let server_label_rejections = "server.label_rejections"

let faults_injected = "faults.injected"

(* -- streaming observability (series / detector / alerts) ----------- *)

let telemetry_occupancy = "telemetry.occupancy"

let stab_shards_stabilized = "stab.shards_stabilized"

let stab_time_to_stabilize_ticks = "stab.time_to_stabilize_ticks"

let stab_fleet_time_to_stabilize_ticks = "stab.fleet.time_to_stabilize_ticks"

let stab_shard_prefix = "stab.shard."
(* Suffixed with the shard index: stab.shard.<i> records that shard's
   online time-to-stabilize (histogram, one sample per run). *)

let alerts_prefix = "alerts."
(* Suffixed with the rule name: alerts.slo_burn / alerts.abort_spike /
   alerts.divergence count rising-edge firings of each anomaly rule. *)

let alert_rule_slo_burn = "slo_burn"

let alert_rule_abort_spike = "abort_spike"

let alert_rule_divergence = "divergence"

let alerts rule = alerts_prefix ^ rule

let stab_shard_memo_cap = 1024

let stab_shard_memo : string array ref = ref [||]

let mint_stab_shard shard = Printf.sprintf "%s%d" stab_shard_prefix shard

let stab_shard ~shard =
  if shard < 0 || shard >= stab_shard_memo_cap then mint_stab_shard shard
  else begin
    let row = !stab_shard_memo in
    let row =
      if shard < Array.length row then row
      else begin
        let cap = min stab_shard_memo_cap (max 16 (max ((shard + 1) * 2) (Array.length row * 2))) in
        let bigger = Array.make cap "" in
        Array.blit row 0 bigger 0 (Array.length row);
        stab_shard_memo := bigger;
        bigger
      end
    in
    let name = row.(shard) in
    if String.length name > 0 then name
    else begin
      let name = mint_stab_shard shard in
      row.(shard) <- name;
      name
    end
  end

(* -- histograms (virtual-tick latencies) --------------------------- *)

let write_collect_ticks = "op.write.collect_ticks"

let write_commit_ticks = "op.write.commit_ticks"

let write_total_ticks = "op.write.total_ticks"

let read_flush_ticks = "op.read.flush_ticks"

let read_decide_ticks = "op.read.decide_ticks"

let read_total_ticks = "op.read.total_ticks"

let read_abort_ticks = "op.read.abort_ticks"

let dl_ack_rtt_ticks = "dl.ack_rtt_ticks"

(* -- load generation ------------------------------------------------ *)

let loadgen_queue_wait_ticks = "loadgen.queue_wait_ticks"
(* Virtual ticks an accepted arrival spent queued before a free client
   dispatched it — the open-loop generator's fleet-wide admission
   delay.  Zero-heavy when offered load is below the knee. *)

(* -- per-shard (templated) ------------------------------------------ *)

(* Per-shard names are minted here and nowhere else: call sites go
   through [kv_shard], so the lint's no-literals rule holds even for
   dynamically numbered metrics, and the artifact naming scheme has a
   single definition.  Names are memoized — the hot path pays one
   hashtable probe, not a [Printf] allocation per operation. *)

let kv_shard_prefix = "kv.shard."

type shard_field =
  | Shard_puts
  | Shard_gets
  | Shard_aborts
  | Shard_put_ticks
  | Shard_get_ticks
  | Shard_flow
  | Shard_op_ticks
  | Shard_offered
  | Shard_accepted
  | Shard_rejected
  | Shard_queue
  | Shard_e2e_ticks

let shard_field_name = function
  | Shard_puts -> "puts"
  | Shard_gets -> "gets"
  | Shard_aborts -> "aborts"
  | Shard_put_ticks -> "put_ticks"
  | Shard_get_ticks -> "get_ticks"
  | Shard_flow -> "flow"
  | Shard_op_ticks -> "op_ticks"
  | Shard_offered -> "offered"
  | Shard_accepted -> "accepted"
  | Shard_rejected -> "rejected"
  | Shard_queue -> "queue"
  | Shard_e2e_ticks -> "e2e_ticks"

let shard_fields =
  [
    Shard_puts;
    Shard_gets;
    Shard_aborts;
    Shard_put_ticks;
    Shard_get_ticks;
    Shard_flow;
    Shard_op_ticks;
    Shard_offered;
    Shard_accepted;
    Shard_rejected;
    Shard_queue;
    Shard_e2e_ticks;
  ]

let shard_field_index = function
  | Shard_puts -> 0
  | Shard_gets -> 1
  | Shard_aborts -> 2
  | Shard_put_ticks -> 3
  | Shard_get_ticks -> 4
  | Shard_flow -> 5
  | Shard_op_ticks -> 6
  | Shard_offered -> 7
  | Shard_accepted -> 8
  | Shard_rejected -> 9
  | Shard_queue -> 10
  | Shard_e2e_ticks -> 11

(* The memo is bounded: one dense array per field, grown geometrically
   up to [kv_shard_memo_cap] shards.  A store with more shards than the
   cap falls back to [Printf] for the excess — correct, just not
   allocation-free — instead of letting a pathological shard count (or
   a corrupted shard index) grow an unbounded table for the life of the
   process. *)
let kv_shard_memo_cap = 1024

let kv_shard_memo : string array array =
  Array.init (List.length shard_fields) (fun _ -> [||])

let kv_shard_memo_size () =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 kv_shard_memo

let mint ~shard field = Printf.sprintf "%s%d.%s" kv_shard_prefix shard (shard_field_name field)

let kv_shard ~shard field =
  if shard < 0 || shard >= kv_shard_memo_cap then mint ~shard field
  else begin
    let fi = shard_field_index field in
    let row = kv_shard_memo.(fi) in
    let row =
      if shard < Array.length row then row
      else begin
        let cap = min kv_shard_memo_cap (max 16 (max ((shard + 1) * 2) (Array.length row * 2))) in
        let bigger = Array.make cap "" in
        Array.blit row 0 bigger 0 (Array.length row);
        kv_shard_memo.(fi) <- bigger;
        bigger
      end
    in
    let name = row.(shard) in
    if String.length name > 0 then name
    else begin
      let name = mint ~shard field in
      row.(shard) <- name;
      name
    end
  end

(* -- registry ------------------------------------------------------- *)

type kind = Counter | Histogram | Prefix

let all =
  [
    (net_sent, Counter, "messages accepted by Network.send");
    (net_delivered, Counter, "messages handed to a registered handler");
    (net_dropped, Counter, "messages lost to crash, tamper or missing handler");
    (net_parked, Counter, "sends withheld by an active partition");
    (net_injected, Counter, "forged messages placed in channels");
    (net_sent_kind_prefix, Prefix, "per-constructor send counts (suffix = Msg.classify)");
    (dl_transmissions, Counter, "data-link packets put on the wire (incl. retransmits)");
    (dl_retransmissions, Counter, "data-link timer refires of the in-flight packet");
    (dl_acks, Counter, "data-link acks sent by receivers");
    (client_write_retries, Counter, "writes that re-timestamped and restarted");
    (server_label_adoptions, Counter, "WRITE requests whose timestamp dominated (ACK)");
    (server_label_rejections, Counter, "WRITE requests adopted on NACK (Figure 1b)");
    (faults_injected, Counter, "fault-plan events fired");
    ( telemetry_occupancy,
      Histogram,
      "streaming series of label-space occupancy snapshots (bounded windowed \
       mirror of the telemetry snapshot list)" );
    (stab_shards_stabilized, Counter, "shards whose online detector declared stabilization");
    ( stab_time_to_stabilize_ticks,
      Histogram,
      "per-shard online time-to-stabilize samples (virtual ticks from the last \
       fault-plan event to the start of the clean window suffix)" );
    ( stab_fleet_time_to_stabilize_ticks,
      Histogram,
      "fleet-wide online time-to-stabilize (max over shards' clean-suffix starts)" );
    ( stab_shard_prefix,
      Prefix,
      "per-shard time-to-stabilize, stab.shard.<i>; minted only by \
       Metric_names.stab_shard" );
    ( alerts_prefix,
      Prefix,
      "rising-edge firings per anomaly rule, alerts.<rule> with rule one of \
       slo_burn (window error budget burn above threshold), abort_spike \
       (per-shard abort rate spiking over its trailing baseline), divergence \
       (shard abort rate diverging from the fleet median); minted only by \
       Metric_names.alerts" );
    (write_collect_ticks, Histogram, "write phase 1: GET_TS to timestamp quorum");
    (write_commit_ticks, Histogram, "write phase 2: WRITE broadcast to ack decision");
    (write_total_ticks, Histogram, "write invocation to response");
    (read_flush_ticks, Histogram, "read phase 1: FLUSH to label safety (find_read_label)");
    (read_decide_ticks, Histogram, "read phase 2: READ broadcast to WTSG decision");
    (read_total_ticks, Histogram, "read invocation to response, value outcomes");
    (read_abort_ticks, Histogram, "read invocation to response, abort outcomes");
    (dl_ack_rtt_ticks, Histogram, "data-link packet first transmit to full acknowledgment");
    ( loadgen_queue_wait_ticks,
      Histogram,
      "open-loop generator: virtual ticks accepted arrivals waited in the \
       admission queue before a free client picked them up" );
    ( kv_shard_prefix,
      Prefix,
      "per-shard KV metrics, kv.shard.<i>.<field> with field one of puts/gets \
       (completed operations), aborts (reads that aborted), put_ticks/get_ticks \
       (latency histograms), flow/op_ticks (streaming series: per-window op \
       flow with abort fraction, and op latency with quantile digest), \
       offered/accepted/rejected (open-loop admission counters), queue \
       (streaming series of admission queue depth) and e2e_ticks (open-loop \
       end-to-end latency histogram: queue wait plus service); minted \
       only by Metric_names.kv_shard" );
  ]

let mem name =
  List.exists
    (fun (n, k, _) ->
      match k with
      | Prefix -> String.length name >= String.length n && String.sub name 0 (String.length n) = n
      | Counter | Histogram -> n = name)
    all
