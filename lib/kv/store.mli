(** A sharded key-value store built on the stabilizing register — the
    cloud-storage service the paper's introduction motivates.

    Keys are strings; each key is one MWMR regular register.  The key
    space is hash-partitioned across [shards] replica groups of [n]
    servers tolerating [f] Byzantine failures each — the standard shape
    of a replicated cloud store, with per-group fault thresholds.

    {b Modeling note.}  On a real deployment each physical server
    multiplexes one register automaton per key it hosts.  The
    simulation instantiates those automata as one register deployment
    per (shard, key), lazily on first touch, all sharing a single
    virtual clock; physical co-residency is captured by {e correlated
    fault injection} — compromising or corrupting a shard applies to
    every key register it hosts, current and future.  Per-key protocol
    behaviour and the fault coupling are exactly preserved; per-server
    queueing across keys is not modelled.

    Semantics inherited per key: MWMR regularity, tolerance of [f]
    Byzantine servers per shard, pseudo-stabilization after transient
    corruption, [Abort] as the transitory-phase answer.  There are no
    cross-key ordering guarantees — each key is an independent regular
    register, which gives exactly per-key regularity and nothing more.

    Values are integers at this layer (the register's value type);
    string payloads belong in an external blob table keyed by these
    integers, as in any pointer-based store. *)

type t

type outcome = Sbft_spec.History.read_outcome

type shard_series = {
  flow : Sbft_sim.Series.t;
      (** one observation per completed op: 1.0 for an abort, 0.0 for a
          success — window count = op volume, window mean = abort rate *)
  lat : Sbft_sim.Series.t;
      (** successful-op latency in virtual ticks, per-window quantile
          digest armed *)
}

type observer = shard:int -> time:int -> ok:bool -> ticks:int -> unit

val create :
  ?seed:int64 ->
  ?delay:Sbft_channel.Delay.t ->
  ?trace_level:Sbft_sim.Trace.level ->
  ?sample:float ->
  ?trace_capacity:int ->
  ?transport:Sbft_channel.Network.transport ->
  ?series_window:int ->
  ?series_keep:int ->
  shards:int ->
  n:int ->
  f:int ->
  clients:int ->
  unit ->
  t
(** [clients] is the number of logical store clients; each holds one
    connection (client endpoint) into every key register it touches.
    [trace_level]/[sample]/[trace_capacity] configure the shared
    engine's trace (see {!Sbft_sim.Engine.create}); the store's own
    per-shard metrics are always on — counters and histograms are part
    of the engine metrics, not the trace.

    [series_window] switches on the streaming per-shard series
    ({!shard_series}): tumbling windows of that many virtual ticks,
    keeping the last [series_keep] (default 64) closed windows per
    shard.  Off by default — the per-op cost is small but not zero. *)

val shard_count : t -> int

val client_count : t -> int

val shard_of_key : t -> string -> int
(** The hash partition (FNV-1a mod shards); exposed for tests and
    placement-aware experiments. *)

val engine : t -> Sbft_sim.Engine.t

val put : t -> client:int -> key:string -> value:int -> ?k:(unit -> unit) -> unit -> unit
(** [put t ~client ~key ~value]: [client] is a logical index in
    [0 .. clients-1].  Raises if the client has another operation in
    flight {e on the same key}. *)

val get : t -> client:int -> key:string -> ?k:(outcome -> unit) -> unit -> unit

val quiesce : ?max_events:int -> t -> unit

(** {2 Streaming observability}

    The store is the layer that knows each operation's shard, so it is
    where completions fan out: into the per-shard series (when
    [series_window] was given) and into registered observers.  Both are
    driven by op completions and the virtual clock — never the trace —
    so they are bit-identical across trace levels and under replay. *)

val add_observer : t -> observer -> unit
(** Called on every put/get completion (aborted gets included,
    [Incomplete] excluded), in registration order. *)

val series_enabled : t -> bool

val series_window : t -> int option
(** The tumbling-window width the store was created with, when series
    are on — so companion series (e.g. the load generator's queue-depth
    series) can tile time identically. *)

val shard_series : t -> int -> shard_series option
(** [None] when the store was created without [series_window]. *)

val all_series : t -> shard_series list
(** Every shard's series in shard order; [[]] when series are off. *)

val roll_series_to : t -> time:int -> unit
(** Close every window ending at or before [time] on all shards — the
    end-of-run flush before reading {!shard_series} back. *)

val apply_to_shard : t -> shard:int -> (Sbft_core.System.t -> unit) -> unit
(** Correlated fault injection: run the hook on every key register the
    shard currently hosts and on every one it creates later.  Use with
    {!Sbft_byz.Strategy.install_all}, {!Sbft_core.System.corrupt_everything},
    etc. *)

val corrupt_everything : t -> severity:[ `Light | `Heavy ] -> unit
(** Transient corruption across every shard (current and future key
    registers). *)

val check_regular : ?after:int -> t -> int * int
(** [(reads_checked, violations)] summed over every key's register
    audit. *)

val keys_touched : t -> string list
(** Sorted. *)

val ops_issued : t -> int

val pp_stats : Format.formatter -> t -> unit
