module Engine = Sbft_sim.Engine
module Metrics = Sbft_sim.Metrics
module Trace = Sbft_sim.Trace
module Event = Sbft_sim.Event
module Names = Sbft_sim.Metric_names
module Series = Sbft_sim.Series
module System = Sbft_core.System
module Config = Sbft_core.Config
module History = Sbft_spec.History

type outcome = History.read_outcome

type shard_series = { flow : Series.t; lat : Series.t }

type observer = shard:int -> time:int -> ok:bool -> ticks:int -> unit

type t = {
  engine : Engine.t;
  delay : Sbft_channel.Delay.t;
  transport : Sbft_channel.Network.transport option;
  shards : int;
  n : int;
  f : int;
  clients : int;
  systems : (string, System.t) Hashtbl.t; (* key -> its register deployment *)
  shard_hooks : (int, (System.t -> unit) list ref) Hashtbl.t;
  series : shard_series array; (* empty when streaming series are off *)
  mutable observers : observer list;
  mutable ops : int;
}

let create ?(seed = 42L) ?(delay = Sbft_channel.Delay.uniform ~max:10) ?trace_level ?sample
    ?trace_capacity ?transport ?series_window ?(series_keep = 64) ~shards ~n ~f ~clients () =
  if shards < 1 then invalid_arg "Store.create: need at least one shard";
  (* Validate the per-shard register parameters once, eagerly. *)
  ignore (Config.make ~n ~f ~clients ());
  let engine = Engine.create ?trace_level ?sample ?trace_capacity ~seed () in
  let series =
    match series_window with
    | None -> [||]
    | Some w ->
        if w < 1 then invalid_arg "Store.create: series_window must be positive";
        (* Eager allocation: a shard that never completes an op still
           contributes (empty = clean) windows to the fleet rollup. *)
        Array.init shards (fun shard ->
            {
              flow =
                Series.create ~keep:series_keep ~window:w
                  ~name:(Names.kv_shard ~shard Names.Shard_flow)
                  ();
              lat =
                Series.create ~keep:series_keep ~quantiles:true ~window:w
                  ~name:(Names.kv_shard ~shard Names.Shard_op_ticks)
                  ();
            })
  in
  {
    engine;
    delay;
    transport;
    shards;
    n;
    f;
    clients;
    systems = Hashtbl.create 32;
    shard_hooks = Hashtbl.create 8;
    series;
    observers = [];
    ops = 0;
  }

let shard_count t = t.shards

let client_count t = t.clients

(* FNV-1a (63-bit), folded into the shard count. *)
let shard_of_key t key =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  abs !h mod t.shards

let engine t = t.engine

let hooks_for t shard =
  match Hashtbl.find_opt t.shard_hooks shard with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.shard_hooks shard r;
      r

let system_for t key =
  match Hashtbl.find_opt t.systems key with
  | Some sys -> sys
  | None ->
      let cfg = Config.make ~n:t.n ~f:t.f ~clients:t.clients () in
      let sys = System.create ~engine:t.engine ~delay:t.delay ?transport:t.transport cfg in
      Hashtbl.add t.systems key sys;
      (* Replay the shard's fault history onto the new key register:
         physical co-residency means a compromised shard is compromised
         for every key it hosts. *)
      List.iter (fun hook -> hook sys) (List.rev !(hooks_for t (shard_of_key t key)));
      sys

let endpoint t client =
  if client < 0 || client >= t.clients then invalid_arg "Store: bad client index";
  t.n + client

(* Per-shard instrumentation: completion counters and latency
   histograms under [kv.shard.<i>.*] in the engine metrics, so the
   metrics artifact carries per-shard p50/p95/p99 without any extra
   plumbing.  Names come from the templated [Names.kv_shard] helper. *)

(* The store is the only layer that knows an operation's shard, so it
   tags the span at invocation; [Spans] then groups ops by shard. *)
let tag_shard t ~shard sid =
  let tr = Engine.trace t.engine in
  if Trace.enabled tr then
    Trace.emit tr ~time:(Engine.now t.engine) (Event.Span_tag { span = sid; tag = "shard"; v = shard })

(* Streaming hook: every op completion feeds the shard's flow series
   (1.0 = abort, 0.0 = success — so a window's count is its op volume
   and its mean is its abort rate), its latency series, and any
   registered observer (the harness stabilization detector).  Driven by
   completions and the virtual clock only, never the trace, so the
   numbers are identical across trace levels and under replay. *)
let completed t ~shard ~ok ~ticks =
  let time = Engine.now t.engine in
  if Array.length t.series > 0 then begin
    let s = t.series.(shard) in
    Series.observe s.flow ~time (if ok then 0.0 else 1.0);
    if ok then Series.observe s.lat ~time (float_of_int ticks)
  end;
  List.iter (fun f -> f ~shard ~time ~ok ~ticks) t.observers

let add_observer t f = t.observers <- t.observers @ [ f ]

let series_enabled t = Array.length t.series > 0

let series_window t =
  if Array.length t.series = 0 then None else Some (Series.window t.series.(0).flow)

let shard_series t shard =
  if Array.length t.series = 0 then None else Some t.series.(shard)

let all_series t = Array.to_list t.series

let roll_series_to t ~time =
  Array.iter
    (fun s ->
      Series.roll_to s.flow ~time;
      Series.roll_to s.lat ~time)
    t.series

let put t ~client ~key ~value ?(k = fun () -> ()) () =
  t.ops <- t.ops + 1;
  let shard = shard_of_key t key in
  let m = Engine.metrics t.engine in
  let started = Engine.now t.engine in
  System.write (system_for t key) ~client:(endpoint t client) ~value
    ~span_k:(fun sid -> tag_shard t ~shard sid)
    ~k:(fun () ->
      let ticks = Engine.now t.engine - started in
      Metrics.incr m (Names.kv_shard ~shard Names.Shard_puts);
      Metrics.record m (Names.kv_shard ~shard Names.Shard_put_ticks) (float_of_int ticks);
      completed t ~shard ~ok:true ~ticks;
      k ())
    ()

let get t ~client ~key ?(k = fun _ -> ()) () =
  t.ops <- t.ops + 1;
  let shard = shard_of_key t key in
  let m = Engine.metrics t.engine in
  let started = Engine.now t.engine in
  System.read (system_for t key) ~client:(endpoint t client)
    ~span_k:(fun sid -> tag_shard t ~shard sid)
    ~k:(fun outcome ->
      let ticks = Engine.now t.engine - started in
      (match outcome with
      | History.Value _ ->
          Metrics.incr m (Names.kv_shard ~shard Names.Shard_gets);
          Metrics.record m (Names.kv_shard ~shard Names.Shard_get_ticks) (float_of_int ticks);
          completed t ~shard ~ok:true ~ticks
      | History.Abort ->
          Metrics.incr m (Names.kv_shard ~shard Names.Shard_aborts);
          completed t ~shard ~ok:false ~ticks
      | History.Incomplete -> ());
      k outcome)
    ()

let quiesce ?(max_events = 50_000_000) t = Engine.run ~max_events t.engine

let apply_to_shard t ~shard hook =
  let r = hooks_for t shard in
  r := hook :: !r;
  Hashtbl.iter (fun key sys -> if shard_of_key t key = shard then hook sys) t.systems

let corrupt_everything t ~severity =
  for shard = 0 to t.shards - 1 do
    apply_to_shard t ~shard (fun sys -> System.corrupt_everything sys ~severity)
  done

let check_regular ?(after = 0) t =
  Hashtbl.fold
    (fun _key sys (checked, violations) ->
      let h = System.history sys in
      (* The pseudo-stabilization suffix for this key starts at its
         first write that both began and completed from [after] on —
         a write already in flight when a fault struck may have been
         disturbed by it. *)
      let scrub =
        List.fold_left
          (fun acc op ->
            match op with
            | History.Write { inv; resp = Some r; _ } when inv >= after -> min acc r
            | _ -> acc)
          max_int (History.ops h)
      in
      let r = Sbft_spec.Regularity.check ~after:scrub ~ts_prec:Sbft_labels.Mw_ts.prec h in
      (checked + r.checked_reads, violations + List.length r.violations))
    t.systems (0, 0)

let keys_touched t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.systems [] |> List.sort String.compare

let ops_issued t = t.ops

let pp_stats fmt t =
  let msgs = Sbft_sim.Metrics.get (Engine.metrics t.engine) Sbft_sim.Metric_names.net_sent in
  Format.fprintf fmt "shards=%d keys=%d ops=%d messages=%d vtime=%d" t.shards
    (Hashtbl.length t.systems) t.ops msgs (Engine.now t.engine)
