(** The retired list-scan regularity checker, kept verbatim as a test
    and benchmark oracle.

    This is the original O(W³)/O(R·W)/O(R²) implementation of
    {!Regularity.check}: nested [List.iter] scans whose verdicts are
    easy to audit against the MWMR-regularity definition by eye.  The
    production checker in {!Regularity} is a sorted-array interval
    sweep that must return {e identical} reports (same violations in
    the same order, same checked/skipped counts) on every history —
    the equivalence is enforced by a qcheck suite over random valid
    and mutated histories and by the regression corpus, and the
    speedup is measured by the benchmark harness (see [bench/]).

    Do not call this from production paths: on a 10k-op history it is
    ≥10× slower than the sweep. *)

val order_violations :
  after:int ->
  ts_prec:('ts -> 'ts -> bool) ->
  'ts Regularity.wrec list ->
  Regularity.violation list
(** The Lemma 8 scan over isolated consecutive write pairs, exactly as
    the retired implementation performed it. *)

val check : ?after:int -> ts_prec:('ts -> 'ts -> bool) -> 'ts History.t -> Regularity.report
(** Same contract as {!Regularity.check}; quadratic-or-worse. *)
