(** MWMR regular register checker (the paper's §II-A specification).

    Audits a history against the three clauses of the multi-writer
    regular register definition ([Shao, Pierce & Welch 2003] as used by
    the paper):

    - {b Termination} — every operation by a non-crashed client got a
      response (reported, not asserted: the harness decides whether an
      incomplete op means a crash or a livelock);
    - {b Validity} — a read returns the last value written before its
      invocation or the value of a concurrent write;
    - {b Consistency} — no "new-old inversion" between reads: for any
      two reads, the writes that do not strictly follow either are
      perceived in the same order.

    "Last written" needs a write serialization when writers overlap.
    The checker takes the protocol's own order as [ts_prec] over the
    timestamps recorded on completed writes, validates that this order
    is consistent with real-time precedence (Lemma 8's claim), and then
    uses it to resolve write-write concurrency.  Reads that aborted or
    never completed are skipped — the paper's pseudo-stabilization
    only promises a {e suffix} satisfying the spec, so the harness
    typically checks the sub-history after the first completed write
    (see [after]).

    Values are assumed unique per write (the workload generator
    guarantees it); duplicate values make "which write was read"
    ambiguous and are reported as a configuration error. *)

type violation = {
  read_id : int;
  kind : [ `Stale | `Future | `Unwritten | `Inversion of int | `Order ];
  detail : string;
  ops : int list;
      (** every implicated operation id (the read itself, the other
          read of an inversion, the writes whose order it breaches) —
          what the forensic trace dump slices on *)
}
(** [`Stale]: returned a value overwritten in real time before the read
    began (a strictly later write had already completed).
    [`Future]: returned a value whose write began after the read ended.
    [`Unwritten]: returned a value never written.
    [`Inversion r1]: consistency breach — this read followed read [r1]
    in real time yet returned a write that completed before [r1]'s
    write even began, while [r1]'s write had completed before this read
    started; no serialization can satisfy both reads.
    [`Order]: Lemma 8 breach — two {e isolated} consecutive writes
    (no third write overlapping either) whose protocol timestamps are
    reversed (attached to read_id = -1).

    The checker never trusts protocol timestamps to order writes: with
    bounded labels, [≺] between non-adjacent writes is legitimately
    arbitrary (wrap-around, non-transitivity).  All staleness and
    inversion verdicts rest on real-time precedence only, which makes
    them sound: every flagged history genuinely violates MWMR
    regularity.  Serializations of mutually-concurrent writes are
    unconstrained, as the definition allows.  The classic
    regular-register "new-old inversion" between two reads racing one
    write is {e not} a violation and is deliberately accepted. *)

type report = {
  checked_reads : int;
  skipped_reads : int;  (** aborted / incomplete / before [after] *)
  violations : violation list;
}

type 'ts wrec = { wid : int; value : int; inv : int; resp : int option; wts : 'ts option }
(** A write projected out of the history — the record both the sweep
    checker and the retired scan oracle ({!Regularity_oracle}) operate
    on.  Exposed for the oracle and the benchmarks; not a stable API. *)

val write_records : 'ts History.t -> 'ts wrec list
(** All writes of the history, in operation order. *)

val order_violations :
  after:int -> ts_prec:('ts -> 'ts -> bool) -> 'ts wrec list -> violation list
(** The Lemma 8 audit in isolation: flags isolated consecutive write
    pairs (real-time ordered, no third write overlapping either) whose
    protocol timestamps are reversed.  Implemented as a sweep over the
    writes sorted by invocation time — isolated pairs are necessarily
    adjacent in that order, so one pass with a prefix-max of completion
    times replaces the retired O(W³) scan. *)

val check : ?after:int -> ts_prec:('ts -> 'ts -> bool) -> 'ts History.t -> report
(** [check ~after ~ts_prec h] audits every read invoked at or after
    time [after] (default 0). [ts_prec] compares the timestamps the
    protocol recorded on writes; it only needs to be meaningful on
    timestamps that actually occur in [h].

    Complexity: O((W + R) · (log W + log R)) on violation-free
    histories — writes and checked reads are sorted once by invocation
    time and every per-read validity/consistency question becomes a
    binary search against a completion frontier (suffix-min of write
    completions for staleness, prefix-max of writer invocations for
    inversions).  Violating histories additionally pay output cost to
    enumerate the exact offenders in the same order the retired scan
    reported them.  Reports are bit-for-bit identical to
    {!Regularity_oracle.check} (enforced by the equivalence suite);
    histories where some response precedes its invocation — nothing the
    simulator can record — are delegated to the scan outright. *)

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
