type read_outcome = Value of int | Abort | Incomplete

type 'ts op =
  | Write of {
      id : int;
      client : int;
      value : int;
      inv : int;
      resp : int option;
      ts : 'ts option;
    }
  | Read of { id : int; client : int; inv : int; resp : int option; outcome : read_outcome }

(* Operation ids are dense and sequential, so they double as array
   indices: completing an operation is an O(1) slot update instead of
   the O(n) whole-list rewrite the first implementation did (which made
   recording an n-op history O(n²) — measurable on 10k-op runs). *)
type 'ts t = { mutable data : 'ts op option array; mutable len : int }

let create () = { data = [||]; len = 0 }

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let nd = Array.make (max 16 (2 * cap)) None in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let append t op =
  grow t;
  t.data.(t.len) <- Some op;
  t.len <- t.len + 1

let begin_write t ~client ~value ~time =
  let id = t.len in
  append t (Write { id; client; value; inv = time; resp = None; ts = None });
  id

let end_write t ~id ~time ~ts =
  if id >= 0 && id < t.len then
    match t.data.(id) with
    | Some (Write w) -> t.data.(id) <- Some (Write { w with resp = Some time; ts })
    | _ -> ()

let begin_read t ~client ~time =
  let id = t.len in
  append t (Read { id; client; inv = time; resp = None; outcome = Incomplete });
  id

let end_read t ~id ~time ~outcome =
  if id >= 0 && id < t.len then
    match t.data.(id) with
    | Some (Read r) -> t.data.(id) <- Some (Read { r with resp = Some time; outcome })
    | _ -> ()

let ops t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    match t.data.(i) with Some op -> out := op :: !out | None -> ()
  done;
  !out

let writes t = List.filter (function Write _ -> true | Read _ -> false) (ops t)

let reads t = List.filter (function Read _ -> true | Write _ -> false) (ops t)

let size t = t.len

let completed_reads t =
  List.length
    (List.filter (function Read { outcome = Value _; _ } -> true | _ -> false) (ops t))

let aborted_reads t =
  List.length (List.filter (function Read { outcome = Abort; _ } -> true | _ -> false) (ops t))

let pp pp_ts fmt t =
  let pp_resp fmt = function Some r -> Format.pp_print_int fmt r | None -> Format.pp_print_char fmt '?' in
  List.iter
    (function
      | Write w ->
          Format.fprintf fmt "[%d,%a] c%d write(%d)%a@\n" w.inv pp_resp w.resp w.client w.value
            (fun fmt -> function Some ts -> Format.fprintf fmt " ts=%a" pp_ts ts | None -> ())
            w.ts
      | Read r ->
          let outcome =
            match r.outcome with
            | Value v -> string_of_int v
            | Abort -> "abort"
            | Incomplete -> "incomplete"
          in
          Format.fprintf fmt "[%d,%a] c%d read() = %s@\n" r.inv pp_resp r.resp r.client outcome)
    (ops t)
