type violation = {
  read_id : int;
  kind : [ `Stale | `Future | `Unwritten | `Inversion of int | `Order ];
  detail : string;
  ops : int list; (* every operation id implicated, for trace forensics *)
}

type report = { checked_reads : int; skipped_reads : int; violations : violation list }

type 'ts wrec = { wid : int; value : int; inv : int; resp : int option; wts : 'ts option }

let write_records h =
  List.filter_map
    (function
      | History.Write w -> Some { wid = w.id; value = w.value; inv = w.inv; resp = w.resp; wts = w.ts }
      | History.Read _ -> None)
    (History.ops h)

(* Shared violation constructors so the sweep and the scan cannot drift
   apart on the report text. *)

let order_violation a b =
  {
    read_id = -1;
    kind = `Order;
    detail =
      Printf.sprintf
        "isolated consecutive writes %d (value %d) then %d (value %d) have reversed \
         protocol timestamps"
        a.wid a.value b.wid b.value;
    ops = [ a.wid; b.wid ];
  }

let stale_detail rid v w' =
  Printf.sprintf
    "read %d returned value %d but write of %d started after that value was written and \
     completed before the read began"
    rid v w'.value

let inversion_detail r2_id r2_v r1_id r1_v =
  Printf.sprintf
    "read %d returned value %d after read %d had returned the strictly newer value %d (both \
     writes completed before read %d began)"
    r2_id r2_v r1_id r1_v r2_id

type rrec = { rid : int; rv : int; rinv : int; rresp : int }

(* ------------------------------------------------------------------ *)
(* Lemma 8 check, on exactly the pairs the lemma speaks about: write A
   completes before write B begins and no third write overlaps either
   (the lemma's "no other write operation is executed between w1 and
   w2").  For such an isolated pair the protocol's timestamps must not
   order B before A.  Pairs entangled with other concurrent writes are
   exempt: bounded labels only promise domination over the timestamps
   actually collected, and a racing write can displace them — the read
   rule never relies on more.

   Only pairs fully inside the audited suffix: a transient fault
   between two writes legitimately breaks the label chain, and the
   pseudo-stabilization contract restarts at the next completed write.

   Sweep version: once the completed writes are sorted by invocation
   time (with response ≥ invocation, which the fictional global clock
   guarantees), an isolated pair is necessarily *adjacent* in that
   order — any write between them in invocation order overlaps the
   span — so it suffices to test each adjacent pair (a, b) for

     - real-time precedence     a.resp < b.inv,
     - a clean left frontier    max resp over writes before a < a.inv,
     - a clean right frontier   the write after b starts after b.resp.

   That is O(W log W) against the retired scan's O(W³); the retired
   scan remains available as {!Regularity_oracle.check} and the two are
   held to identical reports by the equivalence suite. *)
let order_violations ~after ~ts_prec writes =
  let completed = List.filter (fun w -> w.resp <> None && w.inv >= after) writes in
  let s = Array.of_list completed in
  let len = Array.length s in
  if len < 2 then []
  else begin
    (* positions in list order make the emission order reproducible:
       the scan emitted pairs ordered by the first write's position *)
    let idx = Array.init len (fun i -> i) in
    Array.sort
      (fun i j -> if s.(i).inv <> s.(j).inv then compare s.(i).inv s.(j).inv else compare i j)
      idx;
    let resp i = Option.get s.(idx.(i)).resp in
    let inv i = s.(idx.(i)).inv in
    (* prefix.(i) = max resp over sorted positions 0..i *)
    let prefix = Array.make len min_int in
    for i = 0 to len - 1 do
      prefix.(i) <- if i = 0 then resp i else max prefix.(i - 1) (resp i)
    done;
    let out = ref [] in
    for i = 0 to len - 2 do
      let a = s.(idx.(i)) and b = s.(idx.(i + 1)) in
      if
        resp i < inv (i + 1)
        && (i = 0 || prefix.(i - 1) < inv i)
        && (i + 2 >= len || inv (i + 2) > resp (i + 1))
      then
        match a.wts, b.wts with
        | Some ta, Some tb when ts_prec tb ta && not (ts_prec ta tb) ->
            out := (idx.(i), order_violation a b) :: !out
        | _ -> ()
    done;
    List.map snd (List.sort (fun (p, _) (q, _) -> compare p q) !out)
  end

(* ------------------------------------------------------------------ *)
(* Retired list-scan implementation.  It stays here for two reasons:
   re-exported as {!Regularity_oracle}, it is the oracle the sweep is
   equivalence-tested and benchmarked against; and [check] still
   delegates to it for degenerate histories whose responses precede
   their invocations (nothing the simulator can record, but the checker
   must not silently mis-audit a hand-built history either). *)

let order_violations_scan ~after ~ts_prec writes =
  let completed = List.filter (fun w -> w.resp <> None && w.inv >= after) writes in
  let overlaps lo hi w = w.inv <= hi && Option.value ~default:max_int w.resp >= lo in
  let out = ref [] in
  List.iter
    (fun a ->
      let a_resp = Option.get a.resp in
      List.iter
        (fun b ->
          if
            a.wid <> b.wid && a_resp < b.inv
            && not
                 (List.exists
                    (fun c -> c.wid <> a.wid && c.wid <> b.wid && overlaps a.inv (Option.get b.resp) c)
                    completed)
          then
            match a.wts, b.wts with
            | Some ta, Some tb when ts_prec tb ta && not (ts_prec ta tb) ->
                out := order_violation a b :: !out
            | _ -> ())
        completed)
    completed;
  List.rev !out

let check_scan ?(after = 0) ~ts_prec h =
  let writes = write_records h in
  (* Unique values are a workload contract; bail out loudly otherwise. *)
  let by_value = Hashtbl.create 64 in
  List.iter
    (fun w ->
      if Hashtbl.mem by_value w.value then
        invalid_arg (Printf.sprintf "Regularity.check: duplicate written value %d" w.value)
      else Hashtbl.add by_value w.value w)
    writes;
  let checked = ref 0 and skipped = ref 0 in
  let violations = ref (List.rev (order_violations_scan ~after ~ts_prec writes)) in
  let flag ?(also = []) read_id kind detail =
    let ops = if read_id >= 0 then read_id :: also else also in
    violations := { read_id; kind; detail; ops } :: !violations
  in
  let checked_reads = ref [] in
  List.iter
    (function
      | History.Write _ -> ()
      | History.Read r -> (
          match r.outcome, r.resp with
          | (History.Abort | History.Incomplete), _ | _, None -> incr skipped
          | History.Value _, _ when r.inv < after -> incr skipped
          | History.Value v, Some r_resp -> (
              incr checked;
              match Hashtbl.find_opt by_value v with
              | None -> flag r.id `Unwritten (Printf.sprintf "read %d returned unwritten value %d" r.id v)
              | Some w -> (
                  checked_reads := { rid = r.id; rv = v; rinv = r.inv; rresp = r_resp } :: !checked_reads;
                  if w.inv > r_resp then
                    flag ~also:[ w.wid ] r.id `Future
                      (Printf.sprintf "read %d returned value %d written by a later write" r.id v)
                  else
                    match w.resp with
                    | Some w_resp when w_resp < r.inv ->
                        (* Not concurrent: w must not be overwritten in
                           real time before the read began. *)
                        List.iter
                          (fun w' ->
                            match w'.resp with
                            | Some w'_resp
                              when w'.wid <> w.wid && w'_resp < r.inv && w_resp < w'.inv ->
                                flag ~also:[ w.wid; w'.wid ] r.id `Stale (stale_detail r.id v w')
                            | _ -> ())
                          writes
                    | _ -> (* concurrent or failed write: allowed *) ()))))
    (History.ops h);
  (* Consistency across read pairs: a later read must not step back to a
     value strictly real-time-older than what an earlier read already
     returned, once the earlier read's write has completed. *)
  let reads = List.rev !checked_reads in
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if r1.rid <> r2.rid && r1.rresp < r2.rinv && r1.rv <> r2.rv then
            match Hashtbl.find_opt by_value r1.rv, Hashtbl.find_opt by_value r2.rv with
            | Some w1, Some w2 -> (
                match w1.resp, w2.resp with
                | Some w1_resp, Some w2_resp ->
                    if w2_resp < w1.inv && w1_resp < r2.rinv then
                      flag ~also:[ r1.rid; w1.wid; w2.wid ] r2.rid (`Inversion r1.rid)
                        (inversion_detail r2.rid r2.rv r1.rid r1.rv)
                | _ -> ())
            | _ -> ())
        reads)
    reads;
  { checked_reads = !checked; skipped_reads = !skipped; violations = List.rev !violations }

(* ------------------------------------------------------------------ *)
(* The sweep checker.

   The scan's three quadratic-or-worse components are replaced by
   sorted-array frontier queries; everything else (the per-read state
   machine, the verdict taxonomy, the report text, even the order in
   which violations are emitted) is reproduced exactly:

   - staleness: "is value v overwritten before read r began" becomes a
     binary search over all writes sorted by invocation time with a
     suffix-minimum completion frontier — one O(log W) query per read
     instead of an O(W) scan;
   - read-pair inversions: candidate earlier reads are sorted by the
     time both the read and its write have completed, with a
     prefix-maximum of the write invocations — one O(log R) query per
     read instead of an O(R) scan;
   - Lemma 8 pairs: the adjacency sweep in [order_violations].

   The frontier queries only answer "might a violation exist"; when one
   fires, the exact (rare) offenders are enumerated and re-ordered to
   match the scan's emission order, so violating histories cost output
   time, not asymptotics. *)

(* first position in [keys] (ascending) whose key is > target *)
let first_gt keys target =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

(* first position in [keys] (ascending) whose key is >= target *)
let first_ge keys target =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) >= target then hi := mid else lo := mid + 1
  done;
  !lo

let check_sweep ~after ~ts_prec h =
  let writes = write_records h in
  (* Unique values are a workload contract; bail out loudly otherwise. *)
  let by_value = Hashtbl.create 64 in
  List.iter
    (fun w ->
      if Hashtbl.mem by_value w.value then
        invalid_arg (Printf.sprintf "Regularity.check: duplicate written value %d" w.value)
      else Hashtbl.add by_value w.value w)
    writes;
  (* Staleness frontier: every write, sorted by invocation time, with
     the completion time (max_int when still running) and a suffix
     minimum of completions.  "Some write invoked after X completed
     before Y" becomes: at the first sorted position with inv > X, is
     the suffix-minimum completion < Y? *)
  let wa = Array.of_list writes in
  let nw = Array.length wa in
  let worder = Array.init nw (fun i -> i) in
  Array.sort
    (fun i j -> if wa.(i).inv <> wa.(j).inv then compare wa.(i).inv wa.(j).inv else compare i j)
    worder;
  let winv = Array.map (fun i -> wa.(i).inv) worder in
  let wresp i = Option.value ~default:max_int wa.(worder.(i)).resp in
  let suffmin = Array.make (max nw 1) max_int in
  for i = nw - 1 downto 0 do
    suffmin.(i) <- if i = nw - 1 then wresp i else min (wresp i) suffmin.(i + 1)
  done;
  (* Enumerate the writes that really overwrote [w] before read (rid,
     rv, rinv) began, in the scan's emission order (= list order of
     [writes], which is the order of [wa]). *)
  let stale_violations rid rv rinv w w_resp =
    let out = ref [] in
    let lo = first_gt winv w_resp in
    if lo < nw && suffmin.(lo) < rinv then begin
      for i = lo to nw - 1 do
        let oi = worder.(i) in
        let w' = wa.(oi) in
        match w'.resp with
        | Some w'_resp when w'.wid <> w.wid && w'_resp < rinv ->
            (* w'.inv > w_resp holds by the sort position *)
            out :=
              ( oi,
                {
                  read_id = rid;
                  kind = `Stale;
                  detail = stale_detail rid rv w';
                  ops = [ rid; w.wid; w'.wid ];
                } )
              :: !out
        | _ -> ()
      done
    end;
    List.map snd (List.sort (fun (p, _) (q, _) -> compare p q) !out)
  in
  let checked = ref 0 and skipped = ref 0 in
  let violations = ref (List.rev (order_violations ~after ~ts_prec writes)) in
  let flag ?(also = []) read_id kind detail =
    let ops = if read_id >= 0 then read_id :: also else also in
    violations := { read_id; kind; detail; ops } :: !violations
  in
  let checked_reads = ref [] in
  List.iter
    (function
      | History.Write _ -> ()
      | History.Read r -> (
          match r.outcome, r.resp with
          | (History.Abort | History.Incomplete), _ | _, None -> incr skipped
          | History.Value _, _ when r.inv < after -> incr skipped
          | History.Value v, Some r_resp -> (
              incr checked;
              match Hashtbl.find_opt by_value v with
              | None -> flag r.id `Unwritten (Printf.sprintf "read %d returned unwritten value %d" r.id v)
              | Some w -> (
                  checked_reads := { rid = r.id; rv = v; rinv = r.inv; rresp = r_resp } :: !checked_reads;
                  if w.inv > r_resp then
                    flag ~also:[ w.wid ] r.id `Future
                      (Printf.sprintf "read %d returned value %d written by a later write" r.id v)
                  else
                    match w.resp with
                    | Some w_resp when w_resp < r.inv ->
                        List.iter
                          (fun viol -> violations := viol :: !violations)
                          (stale_violations r.id v r.inv w w_resp)
                    | _ -> (* concurrent or failed write: allowed *) ()))))
    (History.ops h);
  (* Consistency across read pairs: a later read must not step back to a
     value strictly real-time-older than what an earlier read already
     returned, once the earlier read's write has completed.

     A read r1 (of completed write w1) can convict a later read r2 once
     both r1 and w1 have finished before r2 begins and w1 began after
     r2's write completed.  Sorting candidates by
     max(r1.resp, w1.resp) with a prefix-maximum of w1.inv turns
     "does any candidate convict r2" into one binary search. *)
  let reads = Array.of_list (List.rev !checked_reads) in
  let nr = Array.length reads in
  if nr > 1 then begin
    let completed_writer rv =
      match Hashtbl.find_opt by_value rv with
      | Some w -> ( match w.resp with Some resp -> Some (w, resp) | None -> None)
      | None -> None
    in
    (* candidate r1's: reads whose write completed *)
    let cand = ref [] in
    Array.iter
      (fun r ->
        match completed_writer r.rv with
        | Some (w1, w1_resp) -> cand := (max r.rresp w1_resp, w1.inv) :: !cand
        | None -> ())
      reads;
    let cand = Array.of_list !cand in
    Array.sort (fun (ka, _) (kb, _) -> compare ka kb) cand;
    let ckeys = Array.map fst cand in
    let nc = Array.length cand in
    let prefmax = Array.make (max nc 1) min_int in
    for i = 0 to nc - 1 do
      prefmax.(i) <- if i = 0 then snd cand.(i) else max prefmax.(i - 1) (snd cand.(i))
    done;
    let out = ref [] in
    Array.iteri
      (fun i2 r2 ->
        match completed_writer r2.rv with
        | None -> ()
        | Some (_, w2_resp) ->
            let hi = first_ge ckeys r2.rinv in
            if hi > 0 && prefmax.(hi - 1) > w2_resp then
              (* someone convicts r2: recover the exact offenders in
                 the scan's r1 order *)
              Array.iteri
                (fun i1 r1 ->
                  if r1.rid <> r2.rid && r1.rresp < r2.rinv && r1.rv <> r2.rv then
                    match completed_writer r1.rv with
                    | Some (w1, w1_resp) when w2_resp < w1.inv && w1_resp < r2.rinv ->
                        let w2 = fst (Option.get (completed_writer r2.rv)) in
                        out :=
                          ( i1,
                            i2,
                            {
                              read_id = r2.rid;
                              kind = `Inversion r1.rid;
                              detail = inversion_detail r2.rid r2.rv r1.rid r1.rv;
                              ops = [ r2.rid; r1.rid; w1.wid; w2.wid ];
                            } )
                        :: !out
                    | _ -> ())
                reads)
      reads;
    List.iter
      (fun (_, _, viol) -> violations := viol :: !violations)
      (List.sort (fun (a1, a2, _) (b1, b2, _) -> compare (a1, a2) (b1, b2)) !out)
  end;
  { checked_reads = !checked; skipped_reads = !skipped; violations = List.rev !violations }

(* The sweeps lean on responses never preceding invocations — true of
   anything the simulator's clock records.  A hand-built history that
   breaks it is audited by the scan instead, so [check]'s verdicts are
   exact on every input. *)
let history_wellformed h =
  List.for_all
    (function
      | History.Write { inv; resp = Some resp; _ } | History.Read { inv; resp = Some resp; _ } ->
          resp >= inv
      | _ -> true)
    (History.ops h)

let check ?(after = 0) ~ts_prec h =
  if history_wellformed h then check_sweep ~after ~ts_prec h else check_scan ~after ~ts_prec h

let ok r = r.violations = []

let pp_report fmt r =
  Format.fprintf fmt "@[<v>regularity: %d reads checked, %d skipped, %d violations@,"
    r.checked_reads r.skipped_reads (List.length r.violations);
  List.iter (fun v -> Format.fprintf fmt "  %s@," v.detail) r.violations;
  Format.fprintf fmt "@]"
