(* The retired list-scan checker, verbatim.  Every allocation and
   iteration order is preserved so the sweep in regularity.ml can be
   held to bit-for-bit report equality. *)

open Regularity

let order_violations ~after ~ts_prec writes =
  let completed = List.filter (fun w -> w.resp <> None && w.inv >= after) writes in
  let overlaps lo hi w = w.inv <= hi && Option.value ~default:max_int w.resp >= lo in
  let out = ref [] in
  List.iter
    (fun a ->
      let a_resp = Option.get a.resp in
      List.iter
        (fun b ->
          if
            a.wid <> b.wid && a_resp < b.inv
            && not
                 (List.exists
                    (fun c -> c.wid <> a.wid && c.wid <> b.wid && overlaps a.inv (Option.get b.resp) c)
                    completed)
          then
            match a.wts, b.wts with
            | Some ta, Some tb when ts_prec tb ta && not (ts_prec ta tb) ->
                out :=
                  {
                    read_id = -1;
                    kind = `Order;
                    detail =
                      Printf.sprintf
                        "isolated consecutive writes %d (value %d) then %d (value %d) have reversed \
                         protocol timestamps"
                        a.wid a.value b.wid b.value;
                    ops = [ a.wid; b.wid ];
                  }
                  :: !out
            | _ -> ())
        completed)
    completed;
  List.rev !out

type rrec = { rid : int; rv : int; rinv : int; rresp : int }

let check ?(after = 0) ~ts_prec h =
  let writes = write_records h in
  (* Unique values are a workload contract; bail out loudly otherwise. *)
  let by_value = Hashtbl.create 64 in
  List.iter
    (fun w ->
      if Hashtbl.mem by_value w.value then
        invalid_arg (Printf.sprintf "Regularity.check: duplicate written value %d" w.value)
      else Hashtbl.add by_value w.value w)
    writes;
  let checked = ref 0 and skipped = ref 0 in
  let violations = ref (List.rev (order_violations ~after ~ts_prec writes)) in
  let flag ?(also = []) read_id kind detail =
    let ops = if read_id >= 0 then read_id :: also else also in
    violations := { read_id; kind; detail; ops } :: !violations
  in
  let checked_reads = ref [] in
  List.iter
    (function
      | History.Write _ -> ()
      | History.Read r -> (
          match r.outcome, r.resp with
          | (History.Abort | History.Incomplete), _ | _, None -> incr skipped
          | History.Value _, _ when r.inv < after -> incr skipped
          | History.Value v, Some r_resp -> (
              incr checked;
              match Hashtbl.find_opt by_value v with
              | None -> flag r.id `Unwritten (Printf.sprintf "read %d returned unwritten value %d" r.id v)
              | Some w -> (
                  checked_reads := { rid = r.id; rv = v; rinv = r.inv; rresp = r_resp } :: !checked_reads;
                  if w.inv > r_resp then
                    flag ~also:[ w.wid ] r.id `Future
                      (Printf.sprintf "read %d returned value %d written by a later write" r.id v)
                  else
                    match w.resp with
                    | Some w_resp when w_resp < r.inv ->
                        (* Not concurrent: w must not be overwritten in
                           real time before the read began. *)
                        List.iter
                          (fun w' ->
                            match w'.resp with
                            | Some w'_resp
                              when w'.wid <> w.wid && w'_resp < r.inv && w_resp < w'.inv ->
                                flag ~also:[ w.wid; w'.wid ] r.id `Stale
                                  (Printf.sprintf
                                     "read %d returned value %d but write of %d started after that \
                                      value was written and completed before the read began"
                                     r.id v w'.value)
                            | _ -> ())
                          writes
                    | _ -> (* concurrent or failed write: allowed *) ()))))
    (History.ops h);
  (* Consistency across read pairs: a later read must not step back to a
     value strictly real-time-older than what an earlier read already
     returned, once the earlier read's write has completed. *)
  let reads = List.rev !checked_reads in
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if r1.rid <> r2.rid && r1.rresp < r2.rinv && r1.rv <> r2.rv then
            match Hashtbl.find_opt by_value r1.rv, Hashtbl.find_opt by_value r2.rv with
            | Some w1, Some w2 -> (
                match w1.resp, w2.resp with
                | Some w1_resp, Some w2_resp ->
                    if w2_resp < w1.inv && w1_resp < r2.rinv then
                      flag ~also:[ r1.rid; w1.wid; w2.wid ] r2.rid (`Inversion r1.rid)
                        (Printf.sprintf
                           "read %d returned value %d after read %d had returned the strictly newer \
                            value %d (both writes completed before read %d began)"
                           r2.rid r2.rv r1.rid r1.rv r2.rid)
                | _ -> ())
            | _ -> ())
        reads)
    reads;
  { checked_reads = !checked; skipped_reads = !skipped; violations = List.rev !violations }
