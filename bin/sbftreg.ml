(* sbftreg — command-line driver for the stabilizing BFT register.

   Subcommands:
     run        simulate a workload and audit it against the spec
     replay     re-execute a recorded trace and diff the event streams
     analyze    reconstruct happened-before from a trace artifact
     spans      assemble per-operation span trees and critical paths
     trends     ingest run artifacts and flag cross-run metric drift
     diff       compare two metrics artifacts with tolerances
     experiment run one experiment table (or "all")
     attack     replay the Theorem 1 lower-bound schedule
     labels     poke at the bounded labeling system
     trace      run a tiny scenario with the event trace enabled
     explore    sweep the fixed schedule grid for counterexamples
     fuzz       coverage-guided mutation over whole scenarios
     shrink     minimize a failing trace to a one-line reproducer
     corpus     replay the committed regression corpus
     storm      random fault storms checked live by the monitor
     kv         Zipfian session against the sharded key-value store
     watch      kv session with a live ASCII dashboard
     report     render a kv metrics artifact as a standalone HTML page
     bench      hot-path throughput and the perf-regression gate *)

open Cmdliner
module Scenario = Sbft_harness.Scenario
module Fuzz = Sbft_harness.Fuzz
module Shrink = Sbft_harness.Shrink
module Fault_plan = Sbft_byz.Fault_plan
module Run_header = Sbft_analysis.Run_header
module Trace_file = Sbft_analysis.Trace_file
module Replay = Sbft_analysis.Replay
module Causality = Sbft_analysis.Causality
module Corpus = Sbft_analysis.Corpus
module Spans = Sbft_analysis.Spans
module Trends = Sbft_analysis.Trends

let outcome_str = function
  | Sbft_spec.History.Value v -> Printf.sprintf "value %d" v
  | Sbft_spec.History.Abort -> "abort"
  | Sbft_spec.History.Incomplete -> "incomplete"

(* ------------------------------------------------------------------ *)
(* run *)

let open_out_or_die path =
  try open_out path
  with Sys_error e ->
    Printf.eprintf "cannot open %s: %s\n" path e;
    exit 1

let fingerprint () = try Digest.to_hex (Digest.file Sys.executable_name) with Sys_error _ -> ""

let endpoint_name ~n i = if i < n then Printf.sprintf "s%d" i else Printf.sprintf "c%d" i

(* The one-line `sbftreg run` invocation reproducing a scenario — what
   a fuzz finding or shrunk counterexample prints so it can be pasted
   straight into a shell or a bug report. *)
let repro_invocation (s : Scenario.t) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "sbftreg run -n %d -f %d --clients %d --seed %Ld --ops %d --write-ratio %g"
       s.n s.f s.clients s.seed s.ops_per_client s.write_ratio);
  if s.delay <> Run_header.default_delay_policy then
    Buffer.add_string b (Printf.sprintf " --delay %s" s.delay);
  Option.iter (fun st -> Buffer.add_string b (Printf.sprintf " --byzantine %s" st)) s.strategy;
  if s.corrupt then Buffer.add_string b " --corrupt";
  if s.plan <> [] then
    Buffer.add_string b (Printf.sprintf " --plan '%s'" (Fault_plan.to_string s.plan));
  Buffer.contents b

let plan_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Fault_plan.of_string s) in
  let print fmt p = Format.pp_print_string fmt (Fault_plan.to_string p) in
  Arg.conv (parse, print)

let delay_arg =
  let names = List.map fst Scenario.policies in
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) names)) Run_header.default_delay_policy
    & info [ "delay" ] ~docv:"POLICY"
        ~doc:(Printf.sprintf "Delay policy: %s." (String.concat ", " names)))

let trace_level_arg =
  let levels =
    List.map (fun l -> (Sbft_sim.Trace.level_to_string l, l)) Sbft_sim.Trace.levels
  in
  Arg.(
    value
    & opt (enum levels) Sbft_sim.Trace.On
    & info [ "trace-level" ] ~docv:"LEVEL"
        ~doc:
          "Trace dial: off (zero-overhead), sampled (deterministic subsequence to sinks, \
           forensic ring kept), on (full stream), forensic (also free-form notes). Never \
           affects the simulation itself.")

let sample_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "sample" ] ~docv:"RATE"
        ~doc:"Sampling rate for --trace-level sampled (deterministic given the sample seed).")

let profile_arg =
  Arg.(
    value
    & flag
    & info [ "profile" ]
        ~doc:
          "Arm the engine self-profiler: per-phase self-time (delivery, server/client steps, \
           checker, telemetry) and top event kinds, printed as a table and embedded in \
           --metrics-out.")

let progress_arg =
  Arg.(
    value
    & flag
    & info [ "progress" ]
        ~doc:
          "Print periodic heartbeat lines to stderr (wall-clock paced, plain text — safe for \
           TTYs and captured logs).")

let run_cmd =
  let go n f clients seed ops write_ratio strategy corrupt delay plan trace_cap snapshot_every
      note trace_out metrics_out level sample profile progress =
    let scenario =
      {
        Scenario.n;
        f;
        clients;
        seed;
        ops_per_client = ops;
        write_ratio;
        strategy;
        corrupt;
        delay;
        plan;
        trace_cap;
        snapshot_every;
      }
    in
    (* open both artifact files before the run: a bad path should fail
       here, not after the simulation has burned its budget (the trace
       itself is written after the run so its header can record the
       checker's verdict, making the artifact corpus-ready) *)
    Option.iter (fun path -> close_out (open_out_or_die path)) trace_out;
    let metrics_oc = Option.map (fun path -> (path, open_out_or_die path)) metrics_out in
    let heartbeat = ref None in
    let on_system sys =
      if progress then begin
        let engine = Sbft_core.System.engine sys in
        let history = Sbft_core.System.history sys in
        let started = Sbft_harness.Clock.now_ns () in
        let last_fault = Fault_plan.last_at plan in
        let render () =
          let ops_list = Sbft_spec.History.ops history in
          let total = List.length ops_list in
          let completed =
            List.length
              (List.filter
                 (function
                   | Sbft_spec.History.Write { resp = Some _; _ }
                   | Sbft_spec.History.Read { resp = Some _; _ } ->
                       true
                   | _ -> false)
                 ops_list)
          in
          let elapsed = Sbft_harness.Clock.elapsed_s started in
          let rate = if elapsed > 0.0 then float_of_int completed /. elapsed else 0.0 in
          Printf.sprintf "ops %d/%d done, %.0f ops/s, in-flight msgs=%d, faults %s" completed
            total rate
            (Sbft_channel.Network.in_flight (Sbft_core.System.network sys))
            (if Sbft_sim.Engine.now engine >= last_fault then "quiet" else "injecting")
        in
        heartbeat := Some (Sbft_harness.Progress.attach engine render)
      end
    in
    match Scenario.execute ~level ~sample ~profile ~on_system scenario with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok r ->
        Option.iter Sbft_harness.Progress.finish !heartbeat;
        let o = r.outcome and reg = r.reg in
        Printf.printf "issued %d writes, %d reads over %d virtual ticks%s\n" o.issued_writes
          o.issued_reads o.wall_ticks
          (if o.livelocked then " (LIVELOCKED)" else "");
        Printf.printf "completed: %d writes, %d reads (%d aborted)\n" (reg.completed_writes ())
          (reg.completed_reads ()) (reg.aborted_reads ());
        let violations = List.length r.report.violations in
        Printf.printf "regularity (after first write at t=%s): %d checked, %d violations\n"
          (if r.after = max_int then "-" else string_of_int r.after)
          r.report.checked_reads violations;
        List.iter
          (fun (v : Sbft_spec.Regularity.violation) -> Printf.printf "  VIOLATION: %s\n" v.detail)
          r.report.violations;
        let history = Sbft_core.System.history r.sys in
        let tr = Sbft_sim.Engine.trace (Sbft_core.System.engine r.sys) in
        if r.report.violations <> [] then
          print_string
            (Sbft_harness.Forensics.dump_string ~name:(endpoint_name ~n) ~trace:tr ~history
               r.report.violations);
        let w, rd = reg.op_latencies () in
        let pp what s =
          Printf.printf "%s latency: %s\n" what
            (Format.asprintf "%a" Sbft_harness.Stats.pp_summary s)
        in
        pp "write" (Sbft_harness.Stats.summarize w);
        pp "read" (Sbft_harness.Stats.summarize rd);
        if corrupt then Format.printf "%a@." Sbft_harness.Probe.pp r.probe;
        let profile_report =
          if profile then
            Some (Sbft_sim.Profile.report (Sbft_sim.Engine.profile (Sbft_core.System.engine r.sys)))
          else None
        in
        Option.iter (fun rep -> Format.printf "%a@." Sbft_sim.Profile.pp rep) profile_report;
        Option.iter
          (fun path ->
            let verdict = Scenario.verdict_to_string (Scenario.verdict_of_run r) in
            let header =
              Scenario.to_header ~fingerprint:(fingerprint ()) ~verdict ~note
                ~trace_level:(Sbft_sim.Trace.level_to_string level)
                scenario
            in
            Trace_file.save ~path ~header r.events;
            Printf.printf "wrote %s (%d events, verdict %s)\n" path (List.length r.events) verdict)
          trace_out;
        Option.iter
          (fun (path, oc) ->
            let module J = Sbft_sim.Json in
            let run =
              [
                ("cmd", J.String "run");
                ("n", J.Int n);
                ("f", J.Int f);
                ("clients", J.Int clients);
                ("seed", J.String (Int64.to_string seed));
                ("ops_per_client", J.Int ops);
                ("write_ratio", J.Float write_ratio);
                ("byzantine", match strategy with Some s -> J.String s | None -> J.Null);
                ("corrupt", J.Bool corrupt);
                ("wall_ticks", J.Int o.wall_ticks);
              ]
            in
            let stale_reads =
              List.map (fun (v : Sbft_spec.Regularity.violation) -> v.read_id) r.report.violations
            in
            output_string oc
              (J.to_string
                 (Sbft_harness.Artifacts.metrics_json ~run ~stabilization:r.probe
                    ~regularity:(r.report.checked_reads, violations)
                    ~telemetry:(Sbft_harness.Telemetry.to_json r.telemetry ~history ~stale_reads ())
                    ?profile:(Option.map Sbft_sim.Profile.to_json profile_report)
                    ~metrics:(Sbft_sim.Engine.metrics (Sbft_core.System.engine r.sys))
                    ~per_node:(Sbft_channel.Network.node_counters (Sbft_core.System.network r.sys))
                    ()));
            output_char oc '\n';
            close_out oc;
            Printf.printf "wrote %s\n" path)
          metrics_oc;
        if violations > 0 then exit 2
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of servers.") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Byzantine bound.") in
  let clients = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client endpoints.") in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"PRNG seed.") in
  let ops = Arg.(value & opt int 25 & info [ "ops" ] ~doc:"Operations per client.") in
  let wr = Arg.(value & opt float 0.3 & info [ "write-ratio" ] ~doc:"Write probability.") in
  let strat =
    Arg.(value & opt (some string) None & info [ "byzantine" ] ~doc:"Byzantine strategy for f servers.")
  in
  let corrupt = Arg.(value & flag & info [ "corrupt" ] ~doc:"Corrupt all state and channels at t=0.") in
  let plan =
    Arg.(
      value
      & opt plan_conv []
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Fault timeline: comma-separated at:kind[:args] events, e.g. \
             '120:byz:4:equivocate,300:heal:4,400:corrupt-channels:0.2'. Kinds: corrupt-server, \
             corrupt-client, corrupt-channels, corrupt-all, byz, heal, crash, slow-node, \
             slow-channel, partition, heal-partition.")
  in
  let trace_cap =
    Arg.(
      value
      & opt int 4096
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:"Forensic event-ring capacity (sinks always see every event).")
  in
  let snapshot_every =
    Arg.(
      value
      & opt int 50
      & info [ "snapshot-every" ] ~docv:"TICKS"
          ~doc:"Period of per-server state snapshots for convergence telemetry; 0 disables.")
  in
  let note =
    Arg.(
      value
      & opt string ""
      & info [ "note" ] ~docv:"TEXT"
          ~doc:
            "Free-form provenance recorded in the trace header (e.g. which lemma a regression \
             corpus entry exercises).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the typed event trace to FILE as JSONL (header line first).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON metrics snapshot (counters, per-phase latency histograms with \
             p50/p95/p99, per-node traffic, stabilization probe, convergence telemetry) to FILE.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a workload and audit it against MWMR regularity")
    Term.(
      const go $ n $ f $ clients $ seed $ ops $ wr $ strat $ corrupt $ delay_arg $ plan
      $ trace_cap $ snapshot_every $ note $ trace_out $ metrics_out $ trace_level_arg
      $ sample_arg $ profile_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* replay *)

let replay_cmd =
  let go path progress profile =
    (* Replay must be byte-comparable with the recording: heartbeats
       and profiler output would interleave with the diff, and the
       recorder's run didn't have them either.  Accept the flags (so a
       copy-pasted run command line works) but suppress them. *)
    if progress || profile then
      Printf.eprintf "note: --progress/--profile are suppressed during replay to keep the output \
                      byte-comparable\n";
    match Trace_file.load path with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok { header = None; _ } ->
        Printf.eprintf "%s: no run header — re-record with --trace-out to get a replayable trace\n"
          path;
        exit 1
    | Ok { header = Some h; events = expected } -> (
        Format.printf "%a@." Run_header.pp h;
        if h.schema <> Run_header.schema_version then
          Printf.eprintf "warning: artifact schema v%d, this binary expects v%d\n" h.schema
            Run_header.schema_version;
        let fp = fingerprint () in
        if Replay.fingerprint_mismatch ~header:h ~fingerprint:fp then
          Printf.eprintf
            "warning: binary fingerprint %s differs from the recorder's %s — a divergence below \
             may be a code change, not nondeterminism\n"
            (String.sub fp 0 12)
            (String.sub h.fingerprint 0 12);
        match Result.bind (Scenario.of_header h) (fun s -> Scenario.execute s) with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        | Ok r ->
            let v = Replay.compare_for_level ~trace_level:h.trace_level ~expected ~got:r.events in
            if h.trace_level = "sampled" then
              Printf.printf "sampled artifact: checking subsequence containment, not equality\n";
            Format.printf "%a@." Replay.pp_verdict v;
            if h.verdict <> "" then begin
              let got = Scenario.verdict_to_string (Scenario.verdict_of_run r) in
              Printf.printf "verdict: recorded %s, replayed %s\n" h.verdict got;
              if got <> h.verdict then exit 2
            end;
            if v.divergence <> None then exit 2)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace artifact.") in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute the run recorded in a trace artifact's header and report the first event \
          where the fresh execution diverges from the recording (exit 2 on divergence)")
    Term.(const go $ path $ progress_arg $ profile_arg)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let go path focus dot_out list_ops =
    match Trace_file.load path with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok { header; events } ->
        let name =
          match header with
          | Some h -> endpoint_name ~n:h.n
          | None -> fun i -> Printf.sprintf "n%d" i
        in
        Option.iter (fun h -> Format.printf "%a@.@." Run_header.pp h) header;
        let g = Causality.build events in
        if list_ops then begin
          Printf.printf "operations: %s\n"
            (String.concat ", " (List.map string_of_int (Causality.op_ids g)));
          exit 0
        end;
        let g, what =
          match focus with
          | Some op -> (Causality.cone g ~op_id:op, Printf.sprintf "causal cone of op %d" op)
          | None -> (g, "full trace")
        in
        if Array.length g.nodes = 0 then begin
          Printf.eprintf "no events match%s\n"
            (match focus with Some op -> Printf.sprintf " op %d" op | None -> "");
          exit 1
        end;
        Printf.printf "%s: %d events, %d edges, %d lifelines\n\n" what (Array.length g.nodes)
          (List.length g.edges)
          (List.length (Causality.locations g));
        print_string (Causality.ascii ~name g);
        Option.iter
          (fun p ->
            let oc = open_out_or_die p in
            output_string oc (Causality.to_dot ~name g);
            close_out oc;
            Printf.printf "\nwrote %s\n" p)
          dot_out
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace artifact.") in
  let focus =
    let parse s =
      let s = match String.index_opt s ':' with Some i -> String.sub s (i + 1) (String.length s - i - 1) | None -> s in
      match int_of_string_opt s with
      | Some op -> Ok (Some op)
      | None -> Error (`Msg "expected op:<id> or <id>")
    in
    let print fmt = function Some op -> Format.fprintf fmt "op:%d" op | None -> () in
    Arg.(
      value
      & opt (conv (parse, print)) None
      & info [ "focus" ] ~docv:"op:ID"
          ~doc:"Slice to the causal cone of one operation (its causes and effects).")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write the graph as GraphViz DOT to FILE.")
  in
  let list_ops =
    Arg.(value & flag & info [ "ops" ] ~doc:"Just list the operation ids present in the trace.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct the happened-before graph of a trace artifact (program order + message \
          deliveries) and render it as an ASCII space-time diagram and optionally DOT")
    Term.(const go $ path $ focus $ dot_out $ list_ops)

(* ------------------------------------------------------------------ *)
(* spans *)

let spans_cmd =
  let go path json_out top focus by_shard min_cov =
    match Trace_file.load path with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok { header; events } ->
        Option.iter (fun h -> Format.printf "%a@.@." Run_header.pp h) header;
        let ops = Spans.build events in
        if ops = [] then begin
          Printf.eprintf
            "%s: no spans — record with --trace-level on (or sampled) on a binary that stamps \
             span ids\n"
            path;
          exit 1
        end;
        (match focus with
        | Some sp -> (
            match List.find_opt (fun (o : Spans.op) -> o.span = sp) ops with
            | Some o -> Format.printf "%a@." Spans.pp_waterfall o
            | None ->
                Printf.eprintf "no span %d in %s\n" sp path;
                exit 1)
        | None ->
            let finished = List.filter (fun (o : Spans.op) -> o.total <> None) ops in
            Printf.printf "%d spans (%d finished ops)\n\n" (List.length ops)
              (List.length finished);
            List.iter
              (fun r -> Format.printf "%a@." Spans.pp_agg_row r)
              (Spans.aggregate ~by_shard ops);
            let slowest =
              List.sort
                (fun (a : Spans.op) b -> compare (Option.get b.total) (Option.get a.total))
                finished
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | x :: r -> x :: take (n - 1) r
            in
            List.iter
              (fun o -> Format.printf "@.%a@." Spans.pp_waterfall o)
              (take top slowest));
        Option.iter
          (fun p ->
            let oc = open_out_or_die p in
            output_string oc (Sbft_sim.Json.to_string (Spans.to_json ops));
            output_char oc '\n';
            close_out oc;
            Printf.printf "\nwrote %s\n" p)
          json_out;
        let worst =
          List.fold_left
            (fun acc (o : Spans.op) ->
              if o.total = None then acc else Float.min acc (Spans.coverage o))
            1.0 ops
        in
        if worst < min_cov then begin
          Printf.eprintf "coverage floor violated: worst op attributes %.1f%% < %.1f%%\n"
            (worst *. 100.) (min_cov *. 100.);
          exit 3
        end
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace artifact.") in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the span trees as JSON to FILE.")
  in
  let top =
    Arg.(value & opt int 1 & info [ "top" ] ~docv:"K" ~doc:"Waterfalls of the K slowest ops.")
  in
  let focus =
    Arg.(value & opt (some int) None
         & info [ "span" ] ~docv:"ID" ~doc:"Show only the waterfall of span ID.")
  in
  let by_shard =
    Arg.(value & flag & info [ "by-shard" ] ~doc:"Group the aggregate table by kv shard.")
  in
  let min_cov =
    Arg.(value & opt float 0.0
         & info [ "min-coverage" ] ~docv:"F"
             ~doc:"Exit 3 if any finished op attributes less than fraction F of its latency.")
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Assemble per-operation span trees from a trace artifact, extract each operation's \
          critical path (dispatch / network / server service / quorum wait per phase), and print \
          phase-attributed latency percentiles plus waterfalls of the slowest operations")
    Term.(const go $ path $ json_out $ top $ focus $ by_shard $ min_cov)

(* ------------------------------------------------------------------ *)
(* trends *)

let trends_cmd =
  let go artifacts db tolerance full =
    let expand p =
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.map (Filename.concat p)
      else [ p ]
    in
    let files = List.concat_map expand artifacts in
    let runs =
      List.map
        (fun p ->
          match Trends.load_artifact p with
          | Ok r -> r
          | Error e ->
              Printf.eprintf "%s\n" e;
              exit 1)
        files
    in
    let history =
      match db with
      | Some db ->
          List.iter (fun r -> Trends.append ~db r) runs;
          Trends.load_db db
      | None -> runs
    in
    if full then
      List.iteri
        (fun i r ->
          Printf.printf "run %d: %s (%d metrics)\n" i r.Trends.source
            (List.length r.Trends.metrics))
        history;
    match Trends.latest_drift ~tolerance history with
    | None ->
        Printf.printf "%d run(s) on file — need two to compare\n" (List.length history)
    | Some (prev, cur, drifts) ->
        Printf.printf "comparing %s -> %s (tolerance %.0f%%)\n" prev.Trends.source
          cur.Trends.source (tolerance *. 100.);
        if drifts = [] then
          Printf.printf "no metric drifted beyond tolerance (%d compared)\n"
            (List.length
               (List.filter
                  (fun (k, _) -> List.mem_assoc k prev.Trends.metrics)
                  cur.Trends.metrics))
        else begin
          List.iter (fun d -> Format.printf "%a@." Trends.pp_drift d) drifts;
          Printf.eprintf "%d metric(s) drifted beyond %.0f%%\n" (List.length drifts)
            (tolerance *. 100.);
          exit 1
        end
  in
  let artifacts =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"ARTIFACT"
             ~doc:"Metrics/bench JSON artifacts (or directories of .json files), oldest first.")
  in
  let db =
    Arg.(value & opt (some string) None
         & info [ "db" ] ~docv:"FILE"
             ~doc:"Append the runs to this JSONL run database and compare its last two entries.")
  in
  let tolerance =
    Arg.(value & opt float 0.3
         & info [ "tolerance" ] ~docv:"T" ~doc:"Relative drift beyond which a metric flags.")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"List every run ingested.") in
  Cmd.v
    (Cmd.info "trends"
       ~doc:
         "Flatten run artifacts (metrics snapshots, bench reports) into an append-only run \
          database and compare the latest run against its predecessor, exiting non-zero when any \
          shared metric drifts beyond the tolerance")
    Term.(const go $ artifacts $ db $ tolerance $ full)

(* ------------------------------------------------------------------ *)
(* diff *)

let diff_cmd =
  let go a b tolerance full =
    let load path =
      let ic =
        try open_in path
        with Sys_error e ->
          Printf.eprintf "cannot open %s: %s\n" path e;
          exit 1
      in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Sbft_sim.Json.of_string (String.trim s) with
      | Ok j -> j
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1
    in
    let rep = Sbft_analysis.Diff.compare ~tolerance (load a) (load b) in
    Format.printf "%a@." (if full then Sbft_analysis.Diff.pp_full else Sbft_analysis.Diff.pp) rep;
    match rep.worst with Sbft_analysis.Diff.Fail -> exit 2 | _ -> ()
  in
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"Baseline artifact.") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"Candidate artifact.") in
  let tolerance =
    Arg.(
      value
      & opt float 0.2
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:"Relative difference within which a metric is OK (3x = warn, beyond = fail).")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Print every compared metric, not just flagged ones.") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two --metrics-out artifacts metric-by-metric with threshold verdicts (exit 2 \
          when any metric fails)")
    Term.(const go $ a $ b $ tolerance $ full)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let go id csv html metrics_out progress =
    let metrics_oc = Option.map (fun p -> (p, open_out_or_die p)) metrics_out in
    let started = Sbft_harness.Clock.now_ns () in
    (* Experiments are opaque closures, so the heartbeat here is
       per-table rather than per-event: one line when a table starts
       and one when it lands, stamped with wall-clock elapsed — enough
       to watch a long `experiment all` from a log tail. *)
    let timed name f =
      if progress then
        Printf.eprintf "[progress +%.1fs] %s: running...\n%!"
          (Sbft_harness.Clock.elapsed_s started) name;
      let t = f () in
      if progress then
        Printf.eprintf "[progress +%.1fs] %s: done (%d rows)\n%!"
          (Sbft_harness.Clock.elapsed_s started)
          (t : Sbft_harness.Table.t).id (List.length t.rows);
      t
    in
    let tables =
      match String.lowercase_ascii id with
      | "all" ->
          List.map
            (fun id ->
              match Sbft_harness.Experiments.by_id id with
              | Some f -> timed id f
              | None -> assert false)
            Sbft_harness.Experiments.ids
      | id -> (
          match Sbft_harness.Experiments.by_id id with
          | Some f -> [ timed id f ]
          | None ->
              Printf.eprintf "unknown experiment %S; known: all, %s\n" id
                (String.concat ", " Sbft_harness.Experiments.ids);
              exit 1)
    in
    List.iter
      (fun t ->
        Sbft_harness.Table.print t;
        if csv then print_string (Sbft_harness.Table.to_csv t))
      tables;
    (match html with
    | Some path ->
        Sbft_harness.Report.write_file ~path
          ~title:"Stabilizing BFT Storage - experiments"
          ~preamble:
            "Reproduction of Bonomi, Potop-Butucaru &amp; Tixeuil, \
             <em>Stabilizing Byzantine-Fault Tolerant Storage</em> (IPPS 2015). See EXPERIMENTS.md \
             for the paper-vs-measured discussion."
          tables;
        Printf.printf "wrote %s\n" path
    | None -> ());
    match metrics_oc with
    | Some (path, oc) ->
        let module J = Sbft_sim.Json in
        let members = [ ("tables", J.List (List.map Sbft_harness.Table.to_json tables)) ] in
        (* when E5 ran, attach the convergence curves behind its table *)
        let members =
          if List.exists (fun (t : Sbft_harness.Table.t) -> t.id = "E5") tables then
            members
            @ [ ("stabilization_telemetry", Sbft_harness.Experiments.stabilization_telemetry ()) ]
          else members
        in
        output_string oc (J.to_string (J.Obj members));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let id = Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id (e1..e20) or all.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Also print CSV.") in
  let html =
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc:"Write an HTML report.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write the result tables to FILE as JSON.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate an experiment table from DESIGN.md's index")
    Term.(const go $ id $ csv $ html $ metrics_out $ progress_arg)

(* ------------------------------------------------------------------ *)
(* attack *)

let attack_cmd =
  let go n f seed =
    Format.printf "TM_1R multiset argument:@.";
    List.iter
      (fun d -> Format.printf "  %a@." Sbft_byz.Theorem1.pp_decision (Sbft_byz.Theorem1.run_decision d))
      Sbft_byz.Theorem1.decisions;
    Format.printf "@.Concrete schedule against the real protocol:@.";
    Format.printf "  %a@." Sbft_byz.Theorem1.pp_protocol (Sbft_byz.Theorem1.run_protocol ~n ~f ~seed)
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Servers (5f shows the violation).") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Byzantine bound.") in
  let seed = Arg.(value & opt int64 5L & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "attack" ~doc:"Replay the Theorem 1 lower-bound schedule")
    Term.(const go $ n $ f $ seed)

(* ------------------------------------------------------------------ *)
(* labels *)

let labels_cmd =
  let go k trials =
    let sys = Sbft_labels.Sbls.system ~k in
    Format.printf "k = %d, universe = %d stings, label size = %d bits@." k
      (k * k + 1)
      (Sbft_labels.Sbls.size_bits sys);
    let rng = Sbft_sim.Rng.create 1L in
    let l0 = Sbft_labels.Sbls.initial sys in
    let l1 = Sbft_labels.Sbls.next sys [ l0 ] in
    Format.printf "initial:     %a@." Sbft_labels.Sbls.pp l0;
    Format.printf "next [l0]:   %a   (l0 < l1: %b)@." Sbft_labels.Sbls.pp l1
      (Sbft_labels.Sbls.prec l0 l1);
    let failures = ref 0 in
    for _ = 1 to trials do
      let inputs = List.init (1 + Sbft_sim.Rng.int rng k) (fun _ -> Sbft_labels.Sbls.random sys rng) in
      let nxt = Sbft_labels.Sbls.next sys inputs in
      if not (List.for_all (fun l -> Sbft_labels.Sbls.prec l nxt) inputs) then incr failures
    done;
    Format.printf "domination over %d random corrupted input sets: %d failures@." trials !failures
  in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~doc:"Labeling parameter.") in
  let trials = Arg.(value & opt int 100_000 & info [ "trials" ] ~doc:"Random trials.") in
  Cmd.v
    (Cmd.info "labels" ~doc:"Inspect the k-stabilizing bounded labeling system")
    Term.(const go $ k $ trials)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let go seed =
    let cfg = Sbft_core.Config.make ~n:6 ~f:1 ~clients:2 () in
    let sys = Sbft_core.System.create ~seed ~trace:true cfg in
    let flow =
      Sbft_harness.Flow.attach (Sbft_core.System.network sys)
        ~describe:(fun m -> Format.asprintf "%a" Sbft_core.Msg.pp m)
    in
    let read_start = ref 0 in
    Sbft_core.System.write sys ~client:6 ~value:7
      ~k:(fun () ->
        read_start := Sbft_sim.Engine.now (Sbft_core.System.engine sys);
        Sbft_core.System.read sys ~client:7
          ~k:(fun o -> Printf.printf "read -> %s\n\n" (outcome_str o))
          ())
      ();
    Sbft_core.System.quiesce sys;
    (* The paper's Figure 4: projections of the operations' events at
       their clients. *)
    let name i = if i < 6 then Printf.sprintf "s%d" i else Printf.sprintf "c%d" i in
    print_string
      (Sbft_harness.Flow.projection ~until:(!read_start - 1) ~endpoint:6 ~name flow);
    print_newline ();
    print_string (Sbft_harness.Flow.projection ~from_time:!read_start ~endpoint:7 ~name flow);
    let m = Sbft_sim.Engine.metrics (Sbft_core.System.engine sys) in
    Printf.printf "\nmessage counters:\n";
    List.iter (fun (k, v) -> Printf.printf "  %-24s %d\n" k v) (Sbft_sim.Metrics.counters m)
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one write/read cycle and print each operation's Figure-4 projection (the client's \
          lifeline of sends and deliveries) plus message counters")
    Term.(const go $ seed)

(* ------------------------------------------------------------------ *)
(* explore *)

let explore_cmd =
  let go n f seeds ops =
    let s = Sbft_harness.Explorer.explore ~n ~f ~seeds ~ops_per_client:ops () in
    Format.printf "%a@." Sbft_harness.Explorer.pp_summary s;
    if s.failures <> [] then exit 2
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Servers.") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Byzantine bound.") in
  let seeds = Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Seeds per grid point.") in
  let ops = Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per client per run.") in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep schedules (seeds x delay policies x adversaries x corruption) hunting for \
          counterexamples; exits non-zero if any run violates the spec")
    Term.(const go $ n $ f $ seeds $ ops)

(* ------------------------------------------------------------------ *)
(* storm *)

let storm_cmd =
  let go n f seed waves every verbose =
    let cfg = Sbft_core.Config.make ~n ~f ~clients:3 () in
    let sys = Sbft_core.System.create ~seed cfg in
    let mon = Sbft_core.Invariants.create sys in
    let plan = Sbft_byz.Fault_plan.storm ~seed ~n ~f ~clients:3 ~waves ~every in
    if verbose then Format.printf "fault timeline:@.%a@." Sbft_byz.Fault_plan.pp plan;
    Sbft_byz.Fault_plan.apply ~monitor:mon sys plan;
    let rng = Sbft_sim.Rng.create (Int64.add seed 1L) in
    let v = ref 0 in
    let rec loop c remaining =
      if remaining > 0 then begin
        let continue () =
          Sbft_sim.Engine.schedule
            (Sbft_core.System.engine sys)
            ~delay:(Sbft_sim.Rng.int_in rng 5 25)
            (fun () -> loop c (remaining - 1))
        in
        if Sbft_sim.Rng.chance rng 0.4 then begin
          incr v;
          Sbft_core.Invariants.write mon ~client:c ~value:!v ~k:continue ()
        end
        else Sbft_core.Invariants.read mon ~client:c ~k:(fun _ -> continue ()) ()
      end
    in
    for c = n to n + 2 do
      loop c 40
    done;
    Sbft_core.System.quiesce sys;
    let r = Sbft_core.Invariants.check mon in
    Format.printf "%a@." Sbft_core.Invariants.pp_report r;
    Format.printf "verdict: %s@." (if Sbft_core.Invariants.ok r then "OK" else "BROKEN");
    if not (Sbft_core.Invariants.ok r) then exit 2
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Servers.") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Byzantine bound.") in
  let seed = Arg.(value & opt int64 8L & info [ "seed" ] ~doc:"PRNG seed.") in
  let waves = Arg.(value & opt int 6 & info [ "waves" ] ~doc:"Fault waves.") in
  let every = Arg.(value & opt int 250 & info [ "every" ] ~doc:"Ticks between waves.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the fault timeline.") in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Run a monitored workload through a random fault storm (corruption + Byzantine \
          takeovers with healing) and report the live invariant checks")
    Term.(const go $ n $ f $ seed $ waves $ every $ verbose)

(* ------------------------------------------------------------------ *)
(* kv *)

(* Shared scaffolding for `kv` and `watch`: pre-populate the keyspace,
   schedule the fault plan and arm the streaming observability (online
   stabilization detector + anomaly ruleset).  Returns the detector,
   the optional alert engine and the absolute virtual time of the last
   scheduled fault — the detector epoch and the regularity-audit
   cutoff. *)
let kv_prepare kv ~keys ~clients ~doom ~fault_at ~fault_shards ~window ~stab_k ~slo_p99
    ~slo_budget =
  let engine = Sbft_kv.Store.engine kv in
  let shards = Sbft_kv.Store.shard_count kv in
  let key_arr = Array.init keys (fun i -> Printf.sprintf "key-%d" i) in
  Array.iteri
    (fun i key -> Sbft_kv.Store.put kv ~client:(i mod clients) ~key ~value:(1000 + i) ())
    key_arr;
  Sbft_kv.Store.quiesce kv;
  let session_start = Sbft_sim.Engine.now engine in
  let doom_time = 300 in
  if doom then begin
    let doomed = Sbft_kv.Store.shard_of_key kv key_arr.(0) in
    Printf.printf "shard %d will suffer Byzantine takeover + corruption at t=%d\n" doomed
      (session_start + doom_time);
    Sbft_sim.Engine.schedule engine ~delay:doom_time (fun () ->
        Sbft_kv.Store.apply_to_shard kv ~shard:doomed (fun sys ->
            ignore (Sbft_byz.Strategy.install_all sys Sbft_byz.Strategies.equivocate);
            Sbft_core.System.corrupt_everything sys ~severity:`Heavy))
  end;
  (match fault_at with
  | Some t ->
      let hit = max 1 (min fault_shards shards) in
      Printf.printf "%d shard%s will suffer transient heavy corruption at t=%d\n" hit
        (if hit = 1 then "" else "s")
        (session_start + t);
      Sbft_sim.Engine.schedule engine ~delay:t (fun () ->
          for s = 0 to hit - 1 do
            Sbft_kv.Store.apply_to_shard kv ~shard:s (fun sys ->
                Sbft_core.System.corrupt_everything sys ~severity:`Heavy)
          done)
  | None -> ());
  let fault_after =
    let last = max (if doom then doom_time else 0) (Option.value ~default:0 fault_at) in
    if last = 0 then 0 else session_start + last
  in
  let det_window = if window > 0 then window else 50 in
  let stab =
    Sbft_harness.Stabilization.attach ~k:stab_k ~window:det_window ~after:fault_after kv
  in
  let alerts =
    if Sbft_kv.Store.series_enabled kv then
      Some
        (Sbft_harness.Alerts.attach
           ~config:
             {
               Sbft_harness.Alerts.default_config with
               slo = { p99_ticks = slo_p99; error_budget = slo_budget };
             }
           kv)
    else None
  in
  (stab, alerts, fault_after)

(* Drive the Zipfian closed-loop session, then close the streaming
   pipeline (finalize detector and alerts, flush trailing windows) and
   audit.  Returns the workload outcome and [(checked, violations)]. *)
let kv_drive kv ~ops ~keys ~zipf ~stab ~alerts ~fault_after =
  let engine = Sbft_kv.Store.engine kv in
  let outcome =
    Sbft_harness.Workload.run_kv
      ~spec:
        {
          Sbft_harness.Workload.kv_ops_per_client = ops;
          kv_write_ratio = 0.3;
          kv_think_max = 25;
          kv_value_base = 2000;
          keys;
          zipf_s = zipf;
        }
      kv
  in
  let now = Sbft_sim.Engine.now engine in
  Sbft_harness.Stabilization.finalize stab ~now;
  Option.iter (fun a -> Sbft_harness.Alerts.finalize a ~now) alerts;
  Sbft_kv.Store.roll_series_to kv ~time:now;
  let audit = Sbft_kv.Store.check_regular ~after:fault_after kv in
  (outcome, audit)

(* The open-loop twin of [kv_drive]: run the arrival engine, then close
   the same streaming pipeline and audit. *)
let kv_drive_open kv ~spec ~stab ~alerts ~fault_after =
  let engine = Sbft_kv.Store.engine kv in
  let outcome = Sbft_harness.Loadgen.run ~spec kv in
  let now = Sbft_sim.Engine.now engine in
  Sbft_harness.Stabilization.finalize stab ~now;
  Option.iter (fun a -> Sbft_harness.Alerts.finalize a ~now) alerts;
  Sbft_kv.Store.roll_series_to kv ~time:now;
  let audit = Sbft_kv.Store.check_regular ~after:fault_after kv in
  (outcome, audit)

let kv_shards_arg = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Replica groups.")

let kv_n_arg = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Servers per shard.")

let kv_f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Byzantine bound per shard.")

let kv_seed_arg = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"PRNG seed.")

let kv_keys_arg = Arg.(value & opt int 8 & info [ "keys" ] ~doc:"Distinct keys.")

let kv_ops_arg = Arg.(value & opt int 30 & info [ "ops" ] ~doc:"Operations per client.")

let kv_clients_arg = Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Logical store clients.")

let kv_doom_arg =
  Arg.(
    value
    & flag
    & info [ "doom" ] ~doc:"Destroy one shard mid-run (Byzantine takeover + heavy corruption).")

let kv_fault_at_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-at" ] ~docv:"T"
        ~doc:
          "Inject transient heavy corruption into the first $(b,--fault-shards) shards T ticks \
           into the session; the stabilization detector measures recovery from this instant.")

let kv_fault_shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "fault-shards" ] ~docv:"N" ~doc:"Shards hit by $(b,--fault-at) (from shard 0).")

let kv_zipf_arg =
  Arg.(
    value
    & opt float Sbft_harness.Workload.default_kv.zipf_s
    & info [ "zipf" ] ~docv:"S" ~doc:"Zipf skew exponent for key popularity (0 = uniform).")

let kv_window_arg =
  Arg.(
    value
    & opt int 50
    & info [ "window" ] ~docv:"TICKS"
        ~doc:
          "Tumbling-window width of the streaming per-shard series in virtual ticks (0 turns \
           the series and the anomaly alerts off; the stabilization detector then falls back \
           to 50-tick windows).")

let kv_stab_k_arg =
  Arg.(
    value
    & opt int 3
    & info [ "stab-k" ] ~docv:"K"
        ~doc:"Consecutive clean windows required to declare a shard stabilized.")

(* -- open-loop arrival flags ---------------------------------------- *)

(* "poisson:RATE" | "const:RATE" | "ramp:A..B" — the Loadgen surface
   syntax.  Rates are ops per virtual tick; range validation (positive,
   representable) happens in Loadgen.validate so the CLI and the
   library agree on the error text. *)
let kv_arrival_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid arrival process %S (expected poisson:RATE, const:RATE or ramp:A..B)" s))
    in
    match String.index_opt s ':' with
    | None -> fail ()
    | Some i -> (
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match kind with
        | "poisson" -> (
            match float_of_string_opt rest with
            | Some r -> Ok (Sbft_harness.Loadgen.Poisson r)
            | None -> fail ())
        | "const" -> (
            match float_of_string_opt rest with
            | Some r -> Ok (Sbft_harness.Loadgen.Const r)
            | None -> fail ())
        | "ramp" -> (
            (* split on the ".." separator; the bounds are floats, so
               scan for two consecutive dots rather than any dot *)
            let sep = ref None in
            for j = 0 to String.length rest - 2 do
              if !sep = None && rest.[j] = '.' && rest.[j + 1] = '.' then sep := Some j
            done;
            match !sep with
            | None -> fail ()
            | Some j -> (
                let a = String.sub rest 0 j in
                let b = String.sub rest (j + 2) (String.length rest - j - 2) in
                match (float_of_string_opt a, float_of_string_opt b) with
                | Some a, Some b -> Ok (Sbft_harness.Loadgen.Ramp (a, b))
                | _ -> fail ()))
        | _ -> fail ())
  in
  let print fmt a = Format.pp_print_string fmt (Sbft_harness.Loadgen.arrival_to_string a) in
  Cmdliner.Arg.conv (parse, print)

let kv_arrival_arg =
  Arg.(
    value
    & opt (some kv_arrival_conv) None
    & info [ "arrival" ] ~docv:"PROCESS"
        ~doc:
          "Drive the store open-loop: simulated requests arrive by this seeded rate process \
           (ops per virtual tick) independent of completions, flow through per-shard admission \
           queues and are dispatched to free clients.  One of $(b,poisson:RATE), \
           $(b,const:RATE) or $(b,ramp:A..B) (instantaneous rate sweeping linearly from A to B \
           over the run).  Without this flag the classic closed-loop driver runs.")

(* "R:W" read/write weights, e.g. 70:30. *)
let kv_mix_conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "invalid mix %S (expected R:W, e.g. 70:30)" s))
    in
    match String.index_opt s ':' with
    | None -> fail ()
    | Some i -> (
        let r = String.sub s 0 i and w = String.sub s (i + 1) (String.length s - i - 1) in
        match (float_of_string_opt r, float_of_string_opt w) with
        | Some r, Some w when r >= 0.0 && w >= 0.0 && r +. w > 0.0 -> Ok (w /. (r +. w))
        | _ -> fail ())
  in
  let print fmt ratio = Format.fprintf fmt "%g:%g" (1.0 -. ratio) ratio in
  Cmdliner.Arg.conv (parse, print)

let kv_mix_arg =
  Arg.(
    value
    & opt (some kv_mix_conv) None
    & info [ "mix" ] ~docv:"R:W"
        ~doc:
          "Read/write weights for the open-loop mix, e.g. $(b,95:5) for a YCSB-B-style \
           read-heavy workload (default 70:30).")

let kv_duration_arg =
  Arg.(
    value
    & opt int 2000
    & info [ "duration" ] ~docv:"TICKS"
        ~doc:"Arrival-generation span in virtual ticks (open loop only).")

let kv_total_ops_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "total-ops" ] ~docv:"N"
        ~doc:
          "Stop generating after exactly N offered arrivals, even if $(b,--duration) has not \
           elapsed (open loop only) — pins the op count of a scale run.")

let kv_max_queue_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Per-shard admission-queue capacity; arrivals beyond it are rejected (counted, not \
           queued).")

let kv_slo_p99_arg =
  Arg.(
    value
    & opt float Sbft_harness.Slo.default_target.p99_ticks
    & info [ "slo-p99" ] ~docv:"TICKS" ~doc:"Per-shard p99 latency target in virtual ticks.")

let kv_slo_budget_arg =
  Arg.(
    value
    & opt float Sbft_harness.Slo.default_target.error_budget
    & info [ "slo-error-budget" ] ~docv:"FRAC"
        ~doc:"Allowed fraction of operations going bad (aborted reads).")

let kv_cmd =
  let go shards n f seed keys ops clients doom fault_at fault_shards zipf window stab_k level
      sample profile progress slo_p99 slo_budget arrival duration mix total_ops max_queue
      metrics_out trace_out =
    let clients = max 1 clients in
    (* Both loops sample keys through the Zipf CDF, so vet the exponent
       up front — the closed loop otherwise only fails inside run_kv. *)
    if Float.is_nan zipf || zipf < 0.0 then begin
      prerr_endline
        ("sbftreg kv: "
        ^ Sbft_harness.Loadgen.error_to_string (Sbft_harness.Loadgen.Invalid_zipf zipf));
      exit 1
    end;
    (* Open loop: build and validate the loadgen spec before paying for
       any simulation, so a bad rate/mix fails fast with the typed
       error text. *)
    let loadgen_spec =
      Option.map
        (fun a ->
          {
            Sbft_harness.Loadgen.mode = Sbft_harness.Loadgen.Open_loop a;
            duration;
            ops = total_ops;
            write_ratio = Option.value ~default:0.3 mix;
            keys;
            zipf_s = zipf;
            value_base = 2000;
            max_queue;
          })
        arrival
    in
    Option.iter
      (fun spec ->
        match Sbft_harness.Loadgen.validate spec with
        | Ok () -> ()
        | Error e ->
            prerr_endline ("sbftreg kv: " ^ Sbft_harness.Loadgen.error_to_string e);
            exit 1)
      loadgen_spec;
    let kv =
      Sbft_kv.Store.create ~seed ~trace_level:level ~sample
        ?series_window:(if window > 0 then Some window else None)
        ~shards ~n ~f ~clients ()
    in
    let engine = Sbft_kv.Store.engine kv in
    let trace_oc =
      Option.map
        (fun path ->
          let oc = open_out_or_die path in
          Sbft_sim.Trace.add_sink (Sbft_sim.Engine.trace engine) (Sbft_sim.Trace.jsonl_sink oc);
          (path, oc))
        trace_out
    in
    let prof = Sbft_sim.Engine.profile engine in
    if profile then begin
      Sbft_sim.Profile.enable prof;
      Sbft_sim.Trace.add_sink (Sbft_sim.Engine.trace engine) (Sbft_sim.Profile.event_sink prof)
    end;
    let metrics_oc = Option.map (fun path -> (path, open_out_or_die path)) metrics_out in
    let started = Sbft_harness.Clock.now_ns () in
    let heartbeat =
      if progress then
        Some
          (Sbft_harness.Progress.attach engine (fun () ->
               let issued = Sbft_kv.Store.ops_issued kv in
               let elapsed = Sbft_harness.Clock.elapsed_s started in
               let rate = if elapsed > 0.0 then float_of_int issued /. elapsed else 0.0 in
               let slo =
                 Sbft_harness.Slo.evaluate
                   ~target:{ p99_ticks = slo_p99; error_budget = slo_budget }
                   ~shards (Sbft_sim.Engine.metrics engine)
               in
               let worst =
                 List.fold_left
                   (fun acc (s : Sbft_harness.Slo.shard) -> Float.max acc s.worst_p99)
                   0.0 slo.shards
               in
               Printf.sprintf "ops issued=%d, %.0f ops/s, worst shard p99=%.0f ticks, slo %s"
                 issued rate worst
                 (if slo.ok then "ok" else "MISS")))
      else None
    in
    let stab, alerts, fault_after =
      kv_prepare kv ~keys ~clients ~doom ~fault_at ~fault_shards ~window ~stab_k ~slo_p99
        ~slo_budget
    in
    let loadgen, (checked, violations) =
      match loadgen_spec with
      | Some spec ->
          let o, audit = kv_drive_open kv ~spec ~stab ~alerts ~fault_after in
          (Some (spec, o), audit)
      | None ->
          let o, audit = kv_drive kv ~ops ~keys ~zipf ~stab ~alerts ~fault_after in
          Printf.printf "%d puts, %d gets (%d aborted); audit: %d reads checked, %d violations\n"
            o.Sbft_harness.Workload.issued_puts o.issued_gets o.aborted_gets (fst audit)
            (snd audit);
          (None, audit)
    in
    Option.iter Sbft_harness.Progress.finish heartbeat;
    (match loadgen with
    | Some (_, o) ->
        Printf.printf
          "offered %d, accepted %d, rejected %d; completed %d (%d puts, %d gets, %d aborted)%s; \
           audit: %d reads checked, %d violations\n"
          o.Sbft_harness.Loadgen.offered o.accepted o.rejected o.completed o.completed_puts
          o.completed_gets o.aborted
          (if o.livelocked then " [LIVELOCKED: event budget exhausted]" else "")
          checked violations;
        Format.printf "%a@." Sbft_harness.Loadgen.pp o
    | None -> ());
    Format.printf "%a@." Sbft_kv.Store.pp_stats kv;
    let slo =
      Sbft_harness.Slo.evaluate
        ~target:{ p99_ticks = slo_p99; error_budget = slo_budget }
        ~shards (Sbft_sim.Engine.metrics engine)
    in
    Format.printf "%a@." Sbft_harness.Slo.pp slo;
    Format.printf "%a@." Sbft_harness.Stabilization.pp stab;
    Option.iter (fun a -> Format.printf "%a@." Sbft_harness.Alerts.pp a) alerts;
    let profile_report = if profile then Some (Sbft_sim.Profile.report prof) else None in
    Option.iter (fun rep -> Format.printf "%a@." Sbft_sim.Profile.pp rep) profile_report;
    (match metrics_oc with
    | Some (path, oc) ->
        let module J = Sbft_sim.Json in
        let run =
          [
            ("cmd", J.String "kv");
            ("shards", J.Int shards);
            ("n", J.Int n);
            ("f", J.Int f);
            ("clients", J.Int clients);
            ("seed", J.String (Int64.to_string seed));
            ("keys", J.Int keys);
            ("ops_per_client", J.Int ops);
            ("zipf", J.Float zipf);
            ("window", J.Int window);
            ("stab_k", J.Int stab_k);
            ("doom", J.Bool doom);
            ("fault_at", (match fault_at with Some t -> J.Int t | None -> J.Null));
            ("fault_shards", J.Int fault_shards);
            ("trace_level", J.String (Sbft_sim.Trace.level_to_string level));
            ("ops_issued", J.Int (Sbft_kv.Store.ops_issued kv));
            ("vtime", J.Int (Sbft_sim.Engine.now engine));
            ("events_fired", J.Int (Sbft_sim.Engine.events_fired engine));
          ]
          @
          match loadgen with
          | Some (spec, _) ->
              [
                ( "arrival",
                  match spec.Sbft_harness.Loadgen.mode with
                  | Sbft_harness.Loadgen.Open_loop a ->
                      J.String (Sbft_harness.Loadgen.arrival_to_string a)
                  | Sbft_harness.Loadgen.Closed_loop _ -> J.String "closed" );
                ("duration", J.Int spec.duration);
                ("mix_write_ratio", J.Float spec.write_ratio);
                ("max_queue", J.Int spec.max_queue);
                ("total_ops", (match spec.ops with Some n -> J.Int n | None -> J.Null));
              ]
          | None -> []
        in
        output_string oc
          (J.to_string
             (Sbft_harness.Artifacts.metrics_json ~run
                ~regularity:(checked, violations)
                ~stabilization_online:stab ?alerts
                ?loadgen:
                  (Option.map
                     (fun (spec, o) -> Sbft_harness.Loadgen.to_json ~spec o)
                     loadgen)
                ?series:
                  (if Sbft_kv.Store.series_enabled kv then Some (Sbft_kv.Store.all_series kv)
                   else None)
                ?queue_series:
                  (match loadgen with
                  | Some (_, o) when Array.length o.Sbft_harness.Loadgen.queue_series > 0 ->
                      Some (Array.to_list o.Sbft_harness.Loadgen.queue_series)
                  | _ -> None)
                ~shards:(Sbft_harness.Slo.to_json slo)
                ?profile:(Option.map Sbft_sim.Profile.to_json profile_report)
                ~metrics:(Sbft_sim.Engine.metrics engine)
                ~per_node:[||] ()));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (match trace_oc with
    | Some (path, oc) ->
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    if violations > 0 || not slo.ok then exit 2
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON metrics snapshot (per-shard counters/histograms with p50/p95/p99, \
             streaming series windows, online stabilization verdicts, alerts, SLO verdicts, \
             optional profile) to FILE.")
  in
  let kv_trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream the event trace as JSONL to FILE (no run header — kv traces feed $(b,spans) \
             and $(b,analyze), not $(b,replay)).")
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:
         "Run a Zipfian session against the sharded key-value store with streaming per-shard \
          series and an online stabilization detector, audit it and gate per-shard SLOs (exit 2 \
          on a violation or SLO miss).  With $(b,--arrival) the session is open-loop: requests \
          arrive by a seeded rate process independent of completions, per-shard admission \
          queues absorb (or shed) the excess, and end-to-end latency including queue wait \
          gates the SLO.")
    Term.(
      const go $ kv_shards_arg $ kv_n_arg $ kv_f_arg $ kv_seed_arg $ kv_keys_arg $ kv_ops_arg
      $ kv_clients_arg $ kv_doom_arg $ kv_fault_at_arg $ kv_fault_shards_arg $ kv_zipf_arg
      $ kv_window_arg $ kv_stab_k_arg $ trace_level_arg $ sample_arg $ profile_arg $ progress_arg
      $ kv_slo_p99_arg $ kv_slo_budget_arg $ kv_arrival_arg $ kv_duration_arg $ kv_mix_arg
      $ kv_total_ops_arg $ kv_max_queue_arg $ metrics_out $ kv_trace_out)

(* ------------------------------------------------------------------ *)
(* watch *)

let watch_cmd =
  let go shards n f seed keys ops clients doom fault_at fault_shards zipf window stab_k slo_p99
      slo_budget every_s ansi =
    let clients = max 1 clients in
    let window = if window > 0 then window else 50 in
    let kv =
      Sbft_kv.Store.create ~seed ~trace_level:Sbft_sim.Trace.Off ~series_window:window ~shards ~n
        ~f ~clients ()
    in
    let engine = Sbft_kv.Store.engine kv in
    let stab, alerts, fault_after =
      kv_prepare kv ~keys ~clients ~doom ~fault_at ~fault_shards ~window ~stab_k ~slo_p99
        ~slo_budget
    in
    let dash = Sbft_harness.Dashboard.create ~stabilization:stab ?alerts kv in
    let heartbeat =
      Sbft_harness.Progress.attach ~every_s ~out:stdout engine (fun () ->
          (if ansi then "\027[2J\027[H" else "") ^ "\n" ^ Sbft_harness.Dashboard.render dash)
    in
    let outcome, (checked, violations) = kv_drive kv ~ops ~keys ~zipf ~stab ~alerts ~fault_after in
    Sbft_harness.Progress.finish heartbeat;
    Printf.printf "%d puts, %d gets (%d aborted); audit: %d reads checked, %d violations\n"
      outcome.Sbft_harness.Workload.issued_puts outcome.issued_gets outcome.aborted_gets checked
      violations;
    Format.printf "%a@." Sbft_harness.Stabilization.pp stab;
    Option.iter (fun a -> Format.printf "%a@." Sbft_harness.Alerts.pp a) alerts;
    if violations > 0 then exit 2
  in
  let every_s =
    Arg.(
      value
      & opt float 2.0
      & info [ "every" ] ~docv:"SECONDS"
          ~doc:"Minimum wall-clock spacing between dashboard frames (0 = every poll).")
  in
  let ansi =
    Arg.(
      value
      & flag
      & info [ "ansi" ]
          ~doc:
            "Clear the screen before each frame (live-TTY mode); without it frames append, \
             which is what captured logs and CI want.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Run a kv session and watch it live: a wall-clock-paced ASCII dashboard of per-shard \
          abort-rate sparklines, the fleet rollup, stabilization verdicts and active alerts \
          (exit 2 on an audit violation)")
    Term.(
      const go $ kv_shards_arg $ kv_n_arg $ kv_f_arg $ kv_seed_arg $ kv_keys_arg $ kv_ops_arg
      $ kv_clients_arg $ kv_doom_arg $ kv_fault_at_arg $ kv_fault_shards_arg $ kv_zipf_arg
      $ kv_window_arg $ kv_stab_k_arg $ kv_slo_p99_arg $ kv_slo_budget_arg $ every_s $ ansi)

(* ------------------------------------------------------------------ *)
(* report *)

let report_cmd =
  let go metrics_path html_path title =
    let contents =
      try In_channel.with_open_text metrics_path In_channel.input_all
      with Sys_error e ->
        Printf.eprintf "cannot open %s: %s\n" metrics_path e;
        exit 1
    in
    match Sbft_sim.Json.of_string (String.trim contents) with
    | Error msg ->
        Printf.eprintf "%s: %s\n" metrics_path msg;
        exit 1
    | Ok artifact ->
        Sbft_harness.Report.write_series_report ~path:html_path ?title artifact;
        Printf.printf "wrote %s\n" html_path
  in
  let metrics =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"METRICS" ~doc:"A kv $(b,--metrics-out) artifact.")
  in
  let html =
    Arg.(
      value & opt string "report.html" & info [ "html" ] ~docv:"FILE" ~doc:"Output HTML path.")
  in
  let title =
    Arg.(value & opt (some string) None & info [ "title" ] ~docv:"TITLE" ~doc:"Page title.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a kv metrics artifact's streaming blocks (per-shard sparklines, stabilization \
          markers, alert log) into a standalone HTML page")
    Term.(const go $ metrics $ html $ title)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let budget_conv =
  let parse s =
    let scale, num =
      if Filename.check_suffix s "ms" then (0.001, Filename.chop_suffix s "ms")
      else if Filename.check_suffix s "s" then (1.0, Filename.chop_suffix s "s")
      else (1.0, s)
    in
    match float_of_string_opt num with
    | Some v when v > 0. -> Ok (v *. scale)
    | _ -> Error (`Msg "expected a duration like 30s or 500ms")
  in
  Arg.conv (parse, fun fmt b -> Format.fprintf fmt "%gs" b)

let save_finding ~dir ~name ~note (s : Scenario.t) =
  match Scenario.execute s with
  | Error e ->
      Printf.eprintf "%s: %s\n" name e;
      None
  | Ok r ->
      let verdict = Scenario.verdict_to_string (Scenario.verdict_of_run r) in
      let header = Scenario.to_header ~fingerprint:(fingerprint ()) ~verdict ~note s in
      let path = Filename.concat dir name in
      Trace_file.save ~path ~header r.events;
      Some (path, verdict)

let fuzz_cmd =
  let save_findings ~dir ~seed findings =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i (fd : Fuzz.finding) ->
        let name = Printf.sprintf "finding-%03d.trace" i in
        let note = Printf.sprintf "fuzz campaign seed=%Ld step=%d" seed fd.step in
        match save_finding ~dir ~name ~note fd.scenario with
        | Some (path, verdict) -> Printf.printf "wrote %s (%s)\n" path verdict
        | None -> ())
      findings
  in
  (* Retained corpus entries become replayable artifacts too: each is
     re-executed so the header records its verdict and the event stream
     — `sbftreg corpus DIR` then proves every entry replays to the same
     verdict, regardless of how many domains retained it. *)
  let save_corpus_entries ~dir ~seed ~domains corpus =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i s ->
        let name = Printf.sprintf "corpus-%03d.trace" i in
        let note = Printf.sprintf "fuzz corpus seed=%Ld domains=%d entry=%d" seed domains i in
        match save_finding ~dir ~name ~note s with
        | Some (path, verdict) -> Printf.printf "wrote %s (%s)\n" path verdict
        | None -> ())
      corpus
  in
  let go n f clients ops wr delay seed iters budget max_findings quiet save save_corpus domains =
    if domains < 1 then begin
      Printf.eprintf "--domains must be >= 1\n";
      exit 1
    end;
    let base =
      { Scenario.default with n; f; clients; ops_per_client = ops; write_ratio = wr; delay }
    in
    let log = if quiet then fun _ -> () else fun line -> Printf.printf "  %s\n%!" line in
    let findings, corpus =
      if domains = 1 then begin
        let report =
          Fuzz.run ~base ~iterations:iters ?budget_s:budget ~max_findings ~log ~seed ()
        in
        Format.printf "%a@." Fuzz.pp_report report;
        (report.findings, report.corpus)
      end
      else begin
        let p =
          Fuzz.run_parallel ~base ~iterations:iters ?budget_s:budget ~max_findings ~log ~domains
            ~seed ()
        in
        Format.printf "%a@." Fuzz.pp_parallel_report p;
        (List.map snd p.merged_findings, p.merged_corpus)
      end
    in
    Option.iter (fun dir -> save_findings ~dir ~seed findings) save;
    Option.iter (fun dir -> save_corpus_entries ~dir ~seed ~domains corpus) save_corpus;
    List.iter
      (fun (fd : Fuzz.finding) ->
        Printf.printf "repro [%s]: %s\n"
          (Scenario.verdict_to_string fd.verdict)
          (repro_invocation fd.scenario))
      findings;
    if findings <> [] then exit 2
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Servers (try 5 to watch n > 5f fail).") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Byzantine bound.") in
  let clients = Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client endpoints in the base scenario.") in
  let ops = Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per client in the base scenario.") in
  let wr = Arg.(value & opt float 0.3 & info [ "write-ratio" ] ~doc:"Base write probability.") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Campaign PRNG seed (the campaign is deterministic given this).") in
  let iters = Arg.(value & opt int 200 & info [ "iters" ] ~doc:"Mutation steps.") in
  let budget =
    Arg.(
      value
      & opt (some budget_conv) None
      & info [ "budget" ] ~docv:"DURATION"
          ~doc:
            "Stop after this much wall-clock time (e.g. 30s, 500ms). Only ever truncates the \
             deterministic step sequence early; per-step behaviour never depends on the clock.")
  in
  let max_findings =
    Arg.(value & opt int 10 & info [ "max-findings" ] ~doc:"Stop after this many findings.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-step progress lines.") in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Save each finding as a replayable trace artifact (verdict in the header) in DIR.")
  in
  let save_corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-corpus" ] ~docv:"DIR"
          ~doc:
            "Save every retained corpus entry (merged across domains) as a replayable trace \
             artifact in DIR; `sbftreg corpus DIR` then asserts each replays to the recorded \
             verdict.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Fan the campaign out across N OCaml domains, one independent deterministic campaign \
             per domain (domain 0 uses --seed verbatim, so N=1 is exactly the single-threaded \
             campaign; each extra domain runs a full --iters campaign at a derived seed). The \
             merged corpus equals the union of the per-domain corpora.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided schedule fuzzing: mutate whole scenarios (seed, delay policy, workload \
          mix, Byzantine strategy, fault timeline), keep mutants that reach new trace coverage, \
          and report every run whose verdict is not ok (exit 2 when any finding surfaces)")
    Term.(
      const go $ n $ f $ clients $ ops $ wr $ delay_arg $ seed $ iters $ budget $ max_findings
      $ quiet $ save $ save_corpus $ domains)

(* ------------------------------------------------------------------ *)
(* shrink *)

let shrink_cmd =
  let go path out max_execs verbose =
    match Trace_file.load path with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok { header = None; _ } ->
        Printf.eprintf "%s: no run header — nothing to shrink\n" path;
        exit 1
    | Ok { header = Some h; _ } -> (
        match Scenario.of_header h with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        | Ok scenario -> (
            match Scenario.execute scenario with
            | Error msg ->
                Printf.eprintf "%s\n" msg;
                exit 1
            | Ok r -> (
                match Scenario.verdict_of_run r with
                | Scenario.Pass ->
                    Printf.eprintf "%s: verdict is ok — nothing to shrink\n" path;
                    exit 1
                | target ->
                    Printf.printf "target verdict: %s\n" (Scenario.verdict_to_string target);
                    let log =
                      if verbose then fun line -> Printf.printf "  %s\n%!" line else fun _ -> ()
                    in
                    let res = Shrink.shrink ~max_executions:max_execs ~log ~target scenario in
                    Format.printf "%a@." Shrink.pp_result res;
                    let out =
                      match out with
                      | Some o -> o
                      | None -> Filename.remove_extension path ^ ".min.trace"
                    in
                    let note =
                      if h.note <> "" then h.note
                      else Printf.sprintf "shrunk from %s" (Filename.basename path)
                    in
                    (match save_finding ~dir:(Filename.dirname out)
                             ~name:(Filename.basename out) ~note res.scenario with
                    | Some (p, verdict) -> Printf.printf "wrote %s (%s)\n" p verdict
                    | None -> exit 1);
                    Printf.printf "repro: %s\n" (repro_invocation res.scenario))))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Failing trace artifact.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the minimized artifact (default: TRACE with a .min.trace suffix).")
  in
  let max_execs =
    Arg.(value & opt int 400 & info [ "max-execs" ] ~doc:"Candidate-execution budget.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each accepted shrink step.") in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Greedily minimize the failing scenario recorded in a trace artifact — fewer fault-plan \
          events, fewer operations, fewer clients — re-executing each candidate and keeping only \
          changes that preserve the verdict; writes the minimal reproducer as a fresh artifact \
          and prints the one-line run invocation")
    Term.(const go $ path $ out $ max_execs $ verbose)

(* ------------------------------------------------------------------ *)
(* corpus *)

let corpus_cmd =
  let go dir =
    match Corpus.load_dir dir with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok [] ->
        Printf.eprintf "%s: empty corpus\n" dir;
        exit 1
    | Ok entries ->
        let failures = ref 0 in
        List.iter
          (fun (e : Corpus.entry) ->
            let name = Filename.basename e.path in
            let fail msg =
              incr failures;
              Printf.printf "FAIL %-32s %s\n" name msg
            in
            if e.header.verdict = "" then fail "header records no verdict"
            else
              match Scenario.of_header e.header with
              | Error msg -> fail msg
              | Ok s -> (
                  match Scenario.execute s with
                  | Error msg -> fail msg
                  | Ok r ->
                      let got = Scenario.verdict_to_string (Scenario.verdict_of_run r) in
                      if got <> e.header.verdict then
                        fail (Printf.sprintf "verdict %s, header says %s" got e.header.verdict)
                      else begin
                        (* recorded events, when present, must replay
                           bit-for-bit — same determinism contract as
                           `sbftreg replay` *)
                        let divergence =
                          if e.events = [] then None
                          else
                            (Replay.compare_for_level ~trace_level:e.header.trace_level
                               ~expected:e.events ~got:r.events)
                              .divergence
                        in
                        match divergence with
                        | Some d -> fail (Printf.sprintf "event stream diverges at %d" d.index)
                        | None ->
                            Printf.printf "ok   %-32s %-16s %s\n" name e.header.verdict
                              e.header.note
                      end))
          entries;
        Printf.printf "%d entries, %d failures\n" (List.length entries) !failures;
        if !failures > 0 then exit 2
  in
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Corpus directory.") in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Replay every regression-corpus entry in a directory and assert that each reproduces \
          the checker verdict recorded in its header (exit 2 on any mismatch)")
    Term.(const go $ dir)

(* ------------------------------------------------------------------ *)
(* bench *)

let bench_cmd =
  let go quick json_path baseline_path tolerance strict =
    let module B = Sbft_harness.Benchmarks in
    let r = B.run ~quick () in
    Format.printf "%a@." B.pp r;
    (match json_path with
    | Some path ->
        Sbft_harness.Artifacts.write_file ~path (B.to_json r);
        Printf.printf "wrote %s\n" path
    | None -> ());
    match baseline_path with
    | None -> ()
    | Some path -> (
        let contents = In_channel.with_open_text path In_channel.input_all in
        match Sbft_sim.Json.of_string contents with
        | Error e ->
            Printf.eprintf "cannot parse baseline %s: %s\n" path e;
            exit 2
        | Ok baseline ->
            let cmp = B.compare_to_baseline ~tolerance ~baseline r in
            (* a metric absent from the baseline is NOT gated — say so
               loudly, because a renamed metric looks exactly like this
               and would otherwise pass as a clean run *)
            List.iter
              (fun metric -> Printf.printf "NEW (ungated) %s: no baseline entry\n" metric)
              cmp.B.ungated;
            (match cmp.B.regressions with
            | [] ->
                Printf.printf "baseline %s: within %.0f%% tolerance\n" path (tolerance *. 100.)
            | regressions ->
                List.iter
                  (fun { B.metric; baseline; current; ratio } ->
                    Printf.eprintf "REGRESSION %s: %.1f -> %.1f (%.0f%% of baseline)\n" metric
                      baseline current (ratio *. 100.))
                  regressions;
                exit 1);
            if strict && cmp.B.ungated <> [] then begin
              Printf.eprintf
                "strict: %d metric(s) not gated by %s — refresh the baseline to cover them\n"
                (List.length cmp.B.ungated) path;
              exit 3
            end)
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test budgets (sub-second, 1k-op history).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 3 when any measured metric is missing from the baseline (printed as NEW \
             (ungated)) — so CI cannot pass on a renamed or newly added metric without a \
             baseline refresh.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write machine-readable results to $(docv).")
  in
  let baseline_path =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare against a committed bench JSON; exit 1 if fuzz schedules/sec or checker \
             throughput regressed beyond the tolerance.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.3
      & info [ "tolerance" ] ~docv:"FRAC" ~doc:"Allowed fractional regression (default 0.3).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure hot-path throughput (engine events/sec, fuzz schedules/sec, checker latency) \
          and optionally gate against a committed baseline")
    Term.(const go $ quick $ json_path $ baseline_path $ tolerance $ strict)

let () =
  let doc = "stabilizing Byzantine-fault-tolerant MWMR regular register (IPPS 2015 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sbftreg" ~doc)
          [
            run_cmd;
            replay_cmd;
            analyze_cmd;
            spans_cmd;
            trends_cmd;
            diff_cmd;
            experiment_cmd;
            attack_cmd;
            labels_cmd;
            trace_cmd;
            explore_cmd;
            fuzz_cmd;
            shrink_cmd;
            corpus_cmd;
            storm_cmd;
            kv_cmd;
            watch_cmd;
            report_cmd;
            bench_cmd;
          ]))
