.PHONY: all build test check lint bench bench-json artifacts clean

all: build

build:
	dune build

test:
	dune runtest

# Raw metric-name literals bypass the Metric_names registry; the same
# rule is enforced (with statement-aware scanning) by the
# "metric-names" alcotest suite — this grep is the fast pre-commit cut.
lint:
	@bad=$$(grep -rn 'Metrics\.\(incr\|add\|record\|get\|observe\)[^;]*"' lib --include='*.ml' \
	  | grep -v 'metric_names\.ml' | grep -v 'Metric_names\.' | grep -v 'Names\.' || true); \
	if [ -n "$$bad" ]; then \
	  echo "raw metric-name literals (use Sbft_sim.Metric_names):"; echo "$$bad"; exit 1; \
	else echo "lint: metric names OK"; fi

check: build test lint

bench:
	dune exec bench/main.exe

# Regenerate the committed perf baseline (engine events/sec, fuzz
# schedules/sec, checker µs per 10k-op history, tracing-overhead rows,
# series and open-loop-generator overhead rows, E12 micro table); CI
# gates `sbftreg bench --baseline BENCH_PR10.json` against it.
bench-json:
	dune exec bench/main.exe -- --json BENCH_PR10.json

# Sample run artifacts (committed reference inputs for sbftreg
# replay/analyze/diff/spans/trends; also a smoke test of the whole
# artifact loop: the fresh trace must replay with zero divergence,
# fully attribute every span, and show zero drift against itself).
# sample-kv-metrics.json is the trends baseline CI regenerates with
# identical flags — keep it free of wall-clock members (no --profile).
artifacts: build
	dune exec bin/sbftreg.exe -- run --seed 7 --ops 10 \
	  --trace-out bench/sample-trace.jsonl --metrics-out bench/sample-metrics.json
	dune exec bin/sbftreg.exe -- replay bench/sample-trace.jsonl
	dune exec bin/sbftreg.exe -- diff bench/sample-metrics.json bench/sample-metrics.json
	dune exec bin/sbftreg.exe -- spans bench/sample-trace.jsonl --min-coverage 0.95 > /dev/null
	dune exec bin/sbftreg.exe -- kv --shards 8 --keys 32 --clients 6 --ops 2000 --seed 9 \
	  --trace-level off --metrics-out bench/sample-kv-metrics.json
	dune exec bin/sbftreg.exe -- trends bench/sample-kv-metrics.json bench/sample-kv-metrics.json

clean:
	dune clean
