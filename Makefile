.PHONY: all build test check lint bench clean

all: build

build:
	dune build

test:
	dune runtest

# Raw metric-name literals bypass the Metric_names registry; the same
# rule is enforced (with statement-aware scanning) by the
# "metric-names" alcotest suite — this grep is the fast pre-commit cut.
lint:
	@bad=$$(grep -rn 'Metrics\.\(incr\|add\|record\|get\|observe\)[^;]*"' lib --include='*.ml' \
	  | grep -v 'metric_names\.ml' | grep -v 'Metric_names\.' | grep -v 'Names\.' || true); \
	if [ -n "$$bad" ]; then \
	  echo "raw metric-name literals (use Sbft_sim.Metric_names):"; echo "$$bad"; exit 1; \
	else echo "lint: metric names OK"; fi

check: build test lint

bench:
	dune exec bench/main.exe

clean:
	dune clean
